//! The structured run journal: a machine-readable account of what ran,
//! where the time went, and why a unit was retried or quarantined.
//!
//! Fex's value proposition is trustworthy, reproducible measurement, yet
//! log lines alone cannot be replayed or audited. This module adds the
//! missing observability layer:
//!
//! * [`JournalEvent`] — the typed event vocabulary. Every run unit leaves
//!   a trail: build start/end with content digest and cache-hit flag,
//!   unit claim (which worker picked it up), VM execution with the
//!   machine's cycle/cache/fault counters, one `run_fault` per faulted
//!   attempt, the unit's final outcome (clean / recovered / failed /
//!   quarantined), merge-time quarantine skips, and experiment/phase
//!   bookkeeping.
//! * [`Journal`] — the per-experiment event buffer threaded through
//!   [`RunContext`](crate::runner::RunContext). The parallel scheduler
//!   keeps its `--jobs N` hot path lock-free by accumulating each unit's
//!   events in the worker that ran it (carried home inside the unit's
//!   outcome) and splicing them into the journal at merge time, in
//!   matrix order — so the journal of a `--jobs 8` run contains exactly
//!   the events of a `--jobs 1` run, worker ids and wall times aside.
//! * [`Metrics`] — the roll-up written to `metrics.json` next to the
//!   results CSV: phase wall times, decode-cache hit rate, the retry
//!   histogram and per-benchmark cycle totals.
//! * [`render_report`] — the `fex report <journal>` renderer: rebuilds
//!   the phase/time breakdown and the per-unit timeline from a
//!   `journal.jsonl` alone, skipping malformed lines and unknown event
//!   types with warnings instead of panicking.
//!
//! The journal is strictly an observer: journaling on vs off
//! (`--no-journal`) leaves the results and failure CSVs byte-identical,
//! which `tests/journal_diff.rs` locks down.
//!
//! Events serialize as one flat JSON object per line (`journal.jsonl`).
//! Serialization is hand-rolled (the workspace builds offline, without
//! serde); the private parser below understands exactly the flat-object
//! subset the writer emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use fex_vm::{RunResult, UnitCounters};

/// Journal format version, recorded in the `experiment_start` event so
/// future readers can dispatch on schema changes.
///
/// Version 2 added the `store_write` event (the run was archived into
/// the result store). Version 3 added the `graph_hit`/`graph_miss` pair
/// (artifact-graph lookups in front of run-unit execution). Version 4
/// added the `serve_*` family (`serve_submit`, `serve_enqueue`,
/// `serve_dispatch`, `serve_stream`, `serve_evict`) emitted by the
/// `fex serve` daemon's own journal.
pub const JOURNAL_VERSION: u64 = 4;

/// One typed journal event. Field names match the JSON keys.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// The experiment began: identity and effective scheduler width.
    ExperimentStart {
        /// Experiment name (`-n`).
        name: String,
        /// Effective worker count (`--jobs` after auto resolution).
        jobs: usize,
        /// Experiment seed.
        seed: u64,
        /// Journal schema version ([`JOURNAL_VERSION`]).
        version: u64,
    },
    /// One benchmark × type compilation finished.
    Build {
        /// Benchmark name.
        benchmark: String,
        /// Build type.
        build_type: String,
        /// Content digest of the artifact (cache key).
        digest: String,
        /// Whether the artifact came out of the build cache
        /// (`--no-build`) instead of a fresh compile.
        cache_hit: bool,
        /// Wall time of the build step (volatile; normalized in golden
        /// snapshots).
        wall_ns: u64,
    },
    /// A worker claimed an executable run unit.
    UnitClaim {
        /// Benchmark name.
        benchmark: String,
        /// Build type.
        build_type: String,
        /// Thread (core) count.
        threads: usize,
        /// Repetition index; `None` for benchmark-level units (dry runs).
        rep: Option<usize>,
        /// Worker index that ran the unit (0 in the sequential loop;
        /// volatile across `--jobs`, normalized in differential tests).
        worker: usize,
    },
    /// The VM executed a run unit successfully: the measured counters.
    VmExec {
        /// Benchmark name.
        benchmark: String,
        /// Build type.
        build_type: String,
        /// Thread (core) count.
        threads: usize,
        /// Repetition index; `None` for dry runs.
        rep: Option<usize>,
        /// Retired instructions.
        instructions: u64,
        /// Elapsed cycles on the main timeline.
        cycles: u64,
        /// L1D misses.
        l1_misses: u64,
        /// LLC misses.
        llc_misses: u64,
        /// Mispredicted branches.
        branch_mispredicts: u64,
        /// Security/fault events the machine observed during the run.
        faults: u64,
        /// Entry-function exit value.
        exit: i64,
    },
    /// One faulted attempt of a run unit (the retry/backoff trail).
    RunFault {
        /// Benchmark name.
        benchmark: String,
        /// Build type.
        build_type: String,
        /// Thread (core) count.
        threads: usize,
        /// Repetition index; `None` for benchmark-level units.
        rep: Option<usize>,
        /// 0-based attempt index that faulted.
        attempt: u64,
        /// The attempt's error message.
        error: String,
    },
    /// A run unit settled: the final resilience verdict.
    UnitOutcome {
        /// Benchmark name.
        benchmark: String,
        /// Build type.
        build_type: String,
        /// Thread (core) count.
        threads: usize,
        /// Repetition index; `None` for benchmark-level units.
        rep: Option<usize>,
        /// `clean`, `recovered`, `failed` or `quarantined`.
        outcome: String,
        /// Attempts spent (1 = clean first try).
        attempts: usize,
        /// Simulated backoff cycles charged between attempts.
        backoff_cycles: u64,
    },
    /// A quarantined benchmark was skipped for a whole build type.
    QuarantineSkip {
        /// Benchmark name.
        benchmark: String,
        /// Build type whose runs were skipped.
        build_type: String,
    },
    /// The artifact graph served this run unit's cached result; the VM
    /// was not entered. Whether a unit hits or misses is cache state, not
    /// behaviour, so `normalize()` rewrites hits to misses — warm and
    /// cold normalized streams are byte-identical.
    GraphHit {
        /// Benchmark name.
        benchmark: String,
        /// Build type.
        build_type: String,
        /// Thread (core) count.
        threads: usize,
        /// Repetition index; `None` for dry runs.
        rep: Option<usize>,
    },
    /// The artifact graph had no node for this run unit; it executed on
    /// the VM (and, when clean, was stored for the next warm run).
    GraphMiss {
        /// Benchmark name.
        benchmark: String,
        /// Build type.
        build_type: String,
        /// Thread (core) count.
        threads: usize,
        /// Repetition index; `None` for dry runs.
        rep: Option<usize>,
    },
    /// Decoded-artifact cache accounting for the whole experiment.
    DecodeCache {
        /// Decode passes performed.
        decodes: usize,
        /// Run-unit executions served a pre-decoded program.
        served: usize,
    },
    /// The completed experiment was archived into the result store.
    StoreWrite {
        /// Experiment name.
        experiment: String,
        /// Content-addressed run id (`fex256:…`).
        run_id: String,
        /// Monotonic sequence number assigned by the store index.
        seq: u64,
    },
    /// A tenant's experiment submission arrived over the serve socket.
    ServeSubmit {
        /// Tenant identity, as claimed by the client (volatile across
        /// runs; normalized).
        tenant: String,
        /// Daemon-assigned submission sequence number (volatile;
        /// normalized).
        submission: u64,
        /// Content-addressed submission key (`fex256:…` over the suite
        /// sources and every config axis).
        key: String,
    },
    /// The submission entered the bounded priority/FIFO queue.
    ServeEnqueue {
        /// Submission sequence number (volatile; normalized).
        submission: u64,
        /// Client-requested priority (higher dispatches first).
        priority: i64,
        /// Queue depth after insertion (volatile; normalized).
        depth: usize,
    },
    /// A serve worker pulled the submission off the queue.
    ServeDispatch {
        /// Submission sequence number (volatile; normalized).
        submission: u64,
        /// Worker index that claimed it (volatile; normalized).
        worker: usize,
        /// Queue latency: enqueue → dispatch wall time (volatile;
        /// normalized).
        wait_ns: u64,
    },
    /// The submission's result stream went back to its client, with the
    /// per-tenant cache accounting.
    ServeStream {
        /// Tenant identity (volatile; normalized).
        tenant: String,
        /// Submission sequence number (volatile; normalized).
        submission: u64,
        /// Journal events streamed live over the connection.
        events: usize,
        /// Run units the shared artifact graph served from cache
        /// (cache state, not behaviour; normalized).
        graph_hits: usize,
        /// Run units the graph had to execute (cache state; normalized).
        graph_misses: usize,
        /// Whether the whole submission was served from the store layer
        /// without running anything (cache state; normalized).
        store_hit: bool,
    },
    /// A submission was evicted instead of queued (bounded queue
    /// overflow, or the daemon was draining).
    ServeEvict {
        /// Submission sequence number (volatile; normalized).
        submission: u64,
        /// Why it was turned away.
        reason: String,
    },
    /// A pipeline phase finished.
    PhaseEnd {
        /// Phase name (`run`, `collect`).
        phase: String,
        /// Wall time of the phase (volatile).
        wall_ns: u64,
    },
    /// The experiment finished.
    ExperimentEnd {
        /// Rows in the results frame.
        rows: usize,
        /// Records in the failure report.
        failure_records: usize,
        /// Wall time of the whole experiment (volatile).
        wall_ns: u64,
    },
}

impl JournalEvent {
    /// The event's `"event"` discriminator string.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::ExperimentStart { .. } => "experiment_start",
            JournalEvent::Build { .. } => "build",
            JournalEvent::UnitClaim { .. } => "unit_claim",
            JournalEvent::VmExec { .. } => "vm_exec",
            JournalEvent::RunFault { .. } => "run_fault",
            JournalEvent::UnitOutcome { .. } => "unit_outcome",
            JournalEvent::QuarantineSkip { .. } => "quarantine_skip",
            JournalEvent::GraphHit { .. } => "graph_hit",
            JournalEvent::GraphMiss { .. } => "graph_miss",
            JournalEvent::DecodeCache { .. } => "decode_cache",
            JournalEvent::StoreWrite { .. } => "store_write",
            JournalEvent::ServeSubmit { .. } => "serve_submit",
            JournalEvent::ServeEnqueue { .. } => "serve_enqueue",
            JournalEvent::ServeDispatch { .. } => "serve_dispatch",
            JournalEvent::ServeStream { .. } => "serve_stream",
            JournalEvent::ServeEvict { .. } => "serve_evict",
            JournalEvent::PhaseEnd { .. } => "phase_end",
            JournalEvent::ExperimentEnd { .. } => "experiment_end",
        }
    }

    /// A `vm_exec` event from a run unit's measured result, with the
    /// counters exported by [`fex_vm::UnitCounters`].
    pub fn vm_exec(
        benchmark: &str,
        build_type: &str,
        threads: usize,
        rep: Option<usize>,
        run: &RunResult,
    ) -> JournalEvent {
        let c = UnitCounters::of(run);
        JournalEvent::VmExec {
            benchmark: benchmark.to_string(),
            build_type: build_type.to_string(),
            threads,
            rep,
            instructions: c.instructions,
            cycles: c.cycles,
            l1_misses: c.l1_misses,
            llc_misses: c.llc_misses,
            branch_mispredicts: c.branch_mispredicts,
            faults: c.fault_events,
            exit: run.exit,
        }
    }

    /// Zeroes the fields that legitimately differ between observationally
    /// identical runs — wall times, worker ids and the effective job
    /// count — so differential tests can compare full event streams.
    pub fn normalize(&mut self) {
        match self {
            JournalEvent::ExperimentStart { jobs, .. } => *jobs = 0,
            JournalEvent::Build { wall_ns, .. } => *wall_ns = 0,
            JournalEvent::UnitClaim { worker, .. } => *worker = 0,
            JournalEvent::PhaseEnd { wall_ns, .. } => *wall_ns = 0,
            JournalEvent::ExperimentEnd { wall_ns, .. } => *wall_ns = 0,
            // The store sequence number records where in the index the
            // run landed — history, not run behaviour: an archival rerun
            // appends at a later position while producing identical
            // artifacts.
            JournalEvent::StoreWrite { seq, .. } => *seq = 0,
            // Hit-vs-miss is artifact-cache state, not run behaviour: a
            // warm run that serves a unit from the graph is
            // observationally identical to the cold run that computed it,
            // so normalized streams erase the distinction.
            JournalEvent::GraphHit { benchmark, build_type, threads, rep } => {
                *self = JournalEvent::GraphMiss {
                    benchmark: std::mem::take(benchmark),
                    build_type: std::mem::take(build_type),
                    threads: *threads,
                    rep: *rep,
                };
            }
            // Serve-side nondeterminism: tenant identity, the daemon's
            // submission counter, queue depth/latency and worker ids are
            // all scheduling history, not run behaviour — two clients
            // submitting the same work in any order must normalize to the
            // same event, the same way StoreWrite's seq is zeroed.
            JournalEvent::ServeSubmit { tenant, submission, .. } => {
                tenant.clear();
                *submission = 0;
            }
            JournalEvent::ServeEnqueue { submission, depth, .. } => {
                *submission = 0;
                *depth = 0;
            }
            JournalEvent::ServeDispatch { submission, worker, wait_ns } => {
                *submission = 0;
                *worker = 0;
                *wait_ns = 0;
            }
            // Cache accounting is cache state, not behaviour (a warm
            // serve is observationally identical to the cold run that
            // populated it), mirroring the GraphHit→GraphMiss rewrite.
            JournalEvent::ServeStream {
                tenant,
                submission,
                events,
                graph_hits,
                graph_misses,
                store_hit,
            } => {
                tenant.clear();
                *submission = 0;
                *events = 0;
                *graph_hits = 0;
                *graph_misses = 0;
                *store_hit = false;
            }
            JournalEvent::ServeEvict { submission, .. } => *submission = 0,
            _ => {}
        }
    }

    /// Serializes the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonLine::new(self.kind());
        match self {
            JournalEvent::ExperimentStart { name, jobs, seed, version } => {
                w.str("name", name)
                    .num("jobs", *jobs as i64)
                    .num("seed", *seed as i64)
                    .num("version", *version as i64);
            }
            JournalEvent::Build { benchmark, build_type, digest, cache_hit, wall_ns } => {
                w.str("benchmark", benchmark)
                    .str("build_type", build_type)
                    .str("digest", digest)
                    .bool("cache_hit", *cache_hit)
                    .num("wall_ns", *wall_ns as i64);
            }
            JournalEvent::UnitClaim { benchmark, build_type, threads, rep, worker } => {
                w.str("benchmark", benchmark)
                    .str("build_type", build_type)
                    .num("threads", *threads as i64)
                    .opt_num("rep", rep.map(|r| r as i64))
                    .num("worker", *worker as i64);
            }
            JournalEvent::VmExec {
                benchmark,
                build_type,
                threads,
                rep,
                instructions,
                cycles,
                l1_misses,
                llc_misses,
                branch_mispredicts,
                faults,
                exit,
            } => {
                w.str("benchmark", benchmark)
                    .str("build_type", build_type)
                    .num("threads", *threads as i64)
                    .opt_num("rep", rep.map(|r| r as i64))
                    .num("instructions", *instructions as i64)
                    .num("cycles", *cycles as i64)
                    .num("l1_misses", *l1_misses as i64)
                    .num("llc_misses", *llc_misses as i64)
                    .num("branch_mispredicts", *branch_mispredicts as i64)
                    .num("faults", *faults as i64)
                    .num("exit", *exit);
            }
            JournalEvent::RunFault { benchmark, build_type, threads, rep, attempt, error } => {
                w.str("benchmark", benchmark)
                    .str("build_type", build_type)
                    .num("threads", *threads as i64)
                    .opt_num("rep", rep.map(|r| r as i64))
                    .num("attempt", *attempt as i64)
                    .str("error", error);
            }
            JournalEvent::UnitOutcome {
                benchmark,
                build_type,
                threads,
                rep,
                outcome,
                attempts,
                backoff_cycles,
            } => {
                w.str("benchmark", benchmark)
                    .str("build_type", build_type)
                    .num("threads", *threads as i64)
                    .opt_num("rep", rep.map(|r| r as i64))
                    .str("outcome", outcome)
                    .num("attempts", *attempts as i64)
                    .num("backoff_cycles", *backoff_cycles as i64);
            }
            JournalEvent::QuarantineSkip { benchmark, build_type } => {
                w.str("benchmark", benchmark).str("build_type", build_type);
            }
            JournalEvent::GraphHit { benchmark, build_type, threads, rep }
            | JournalEvent::GraphMiss { benchmark, build_type, threads, rep } => {
                w.str("benchmark", benchmark)
                    .str("build_type", build_type)
                    .num("threads", *threads as i64)
                    .opt_num("rep", rep.map(|r| r as i64));
            }
            JournalEvent::DecodeCache { decodes, served } => {
                w.num("decodes", *decodes as i64).num("served", *served as i64);
            }
            JournalEvent::StoreWrite { experiment, run_id, seq } => {
                w.str("experiment", experiment).str("run_id", run_id).num("seq", *seq as i64);
            }
            JournalEvent::ServeSubmit { tenant, submission, key } => {
                w.str("tenant", tenant).num("submission", *submission as i64).str("key", key);
            }
            JournalEvent::ServeEnqueue { submission, priority, depth } => {
                w.num("submission", *submission as i64)
                    .num("priority", *priority)
                    .num("depth", *depth as i64);
            }
            JournalEvent::ServeDispatch { submission, worker, wait_ns } => {
                w.num("submission", *submission as i64)
                    .num("worker", *worker as i64)
                    .num("wait_ns", *wait_ns as i64);
            }
            JournalEvent::ServeStream {
                tenant,
                submission,
                events,
                graph_hits,
                graph_misses,
                store_hit,
            } => {
                w.str("tenant", tenant)
                    .num("submission", *submission as i64)
                    .num("events", *events as i64)
                    .num("graph_hits", *graph_hits as i64)
                    .num("graph_misses", *graph_misses as i64)
                    .bool("store_hit", *store_hit);
            }
            JournalEvent::ServeEvict { submission, reason } => {
                w.num("submission", *submission as i64).str("reason", reason);
            }
            JournalEvent::PhaseEnd { phase, wall_ns } => {
                w.str("phase", phase).num("wall_ns", *wall_ns as i64);
            }
            JournalEvent::ExperimentEnd { rows, failure_records, wall_ns } => {
                w.num("rows", *rows as i64)
                    .num("failure_records", *failure_records as i64)
                    .num("wall_ns", *wall_ns as i64);
            }
        }
        w.finish()
    }
}

/// Why a journal line could not be turned into an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseIssue {
    /// The line is not a well-formed flat JSON object, or a required
    /// field is missing or mistyped.
    Malformed(String),
    /// The line parses but names an event type this reader does not know
    /// (e.g. a journal written by a newer version).
    UnknownEvent(String),
}

impl std::fmt::Display for ParseIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseIssue::Malformed(m) => write!(f, "malformed journal line: {m}"),
            ParseIssue::UnknownEvent(k) => write!(f, "unknown event type `{k}`"),
        }
    }
}

/// Parses one `journal.jsonl` line back into an event.
///
/// # Errors
///
/// [`ParseIssue::Malformed`] on broken JSON or missing fields,
/// [`ParseIssue::UnknownEvent`] on an unrecognized `"event"` value.
pub fn parse_line(line: &str) -> std::result::Result<JournalEvent, ParseIssue> {
    let map = parse_flat_object(line)?;
    let kind = get_str(&map, "event")?;
    let ev = match kind {
        "experiment_start" => JournalEvent::ExperimentStart {
            name: get_str(&map, "name")?.to_string(),
            jobs: get_u64(&map, "jobs")? as usize,
            seed: get_u64(&map, "seed")?,
            version: get_u64(&map, "version")?,
        },
        "build" => JournalEvent::Build {
            benchmark: get_str(&map, "benchmark")?.to_string(),
            build_type: get_str(&map, "build_type")?.to_string(),
            digest: get_str(&map, "digest")?.to_string(),
            cache_hit: get_bool(&map, "cache_hit")?,
            wall_ns: get_u64(&map, "wall_ns")?,
        },
        "unit_claim" => JournalEvent::UnitClaim {
            benchmark: get_str(&map, "benchmark")?.to_string(),
            build_type: get_str(&map, "build_type")?.to_string(),
            threads: get_u64(&map, "threads")? as usize,
            rep: get_opt_u64(&map, "rep")?.map(|r| r as usize),
            worker: get_u64(&map, "worker")? as usize,
        },
        "vm_exec" => JournalEvent::VmExec {
            benchmark: get_str(&map, "benchmark")?.to_string(),
            build_type: get_str(&map, "build_type")?.to_string(),
            threads: get_u64(&map, "threads")? as usize,
            rep: get_opt_u64(&map, "rep")?.map(|r| r as usize),
            instructions: get_u64(&map, "instructions")?,
            cycles: get_u64(&map, "cycles")?,
            l1_misses: get_u64(&map, "l1_misses")?,
            llc_misses: get_u64(&map, "llc_misses")?,
            branch_mispredicts: get_u64(&map, "branch_mispredicts")?,
            faults: get_u64(&map, "faults")?,
            exit: get_i64(&map, "exit")?,
        },
        "run_fault" => JournalEvent::RunFault {
            benchmark: get_str(&map, "benchmark")?.to_string(),
            build_type: get_str(&map, "build_type")?.to_string(),
            threads: get_u64(&map, "threads")? as usize,
            rep: get_opt_u64(&map, "rep")?.map(|r| r as usize),
            attempt: get_u64(&map, "attempt")?,
            error: get_str(&map, "error")?.to_string(),
        },
        "unit_outcome" => JournalEvent::UnitOutcome {
            benchmark: get_str(&map, "benchmark")?.to_string(),
            build_type: get_str(&map, "build_type")?.to_string(),
            threads: get_u64(&map, "threads")? as usize,
            rep: get_opt_u64(&map, "rep")?.map(|r| r as usize),
            outcome: get_str(&map, "outcome")?.to_string(),
            attempts: get_u64(&map, "attempts")? as usize,
            backoff_cycles: get_u64(&map, "backoff_cycles")?,
        },
        "quarantine_skip" => JournalEvent::QuarantineSkip {
            benchmark: get_str(&map, "benchmark")?.to_string(),
            build_type: get_str(&map, "build_type")?.to_string(),
        },
        "graph_hit" => JournalEvent::GraphHit {
            benchmark: get_str(&map, "benchmark")?.to_string(),
            build_type: get_str(&map, "build_type")?.to_string(),
            threads: get_u64(&map, "threads")? as usize,
            rep: get_opt_u64(&map, "rep")?.map(|r| r as usize),
        },
        "graph_miss" => JournalEvent::GraphMiss {
            benchmark: get_str(&map, "benchmark")?.to_string(),
            build_type: get_str(&map, "build_type")?.to_string(),
            threads: get_u64(&map, "threads")? as usize,
            rep: get_opt_u64(&map, "rep")?.map(|r| r as usize),
        },
        "decode_cache" => JournalEvent::DecodeCache {
            decodes: get_u64(&map, "decodes")? as usize,
            served: get_u64(&map, "served")? as usize,
        },
        "store_write" => JournalEvent::StoreWrite {
            experiment: get_str(&map, "experiment")?.to_string(),
            run_id: get_str(&map, "run_id")?.to_string(),
            seq: get_u64(&map, "seq")?,
        },
        "serve_submit" => JournalEvent::ServeSubmit {
            tenant: get_str(&map, "tenant")?.to_string(),
            submission: get_u64(&map, "submission")?,
            key: get_str(&map, "key")?.to_string(),
        },
        "serve_enqueue" => JournalEvent::ServeEnqueue {
            submission: get_u64(&map, "submission")?,
            priority: get_i64(&map, "priority")?,
            depth: get_u64(&map, "depth")? as usize,
        },
        "serve_dispatch" => JournalEvent::ServeDispatch {
            submission: get_u64(&map, "submission")?,
            worker: get_u64(&map, "worker")? as usize,
            wait_ns: get_u64(&map, "wait_ns")?,
        },
        "serve_stream" => JournalEvent::ServeStream {
            tenant: get_str(&map, "tenant")?.to_string(),
            submission: get_u64(&map, "submission")?,
            events: get_u64(&map, "events")? as usize,
            graph_hits: get_u64(&map, "graph_hits")? as usize,
            graph_misses: get_u64(&map, "graph_misses")? as usize,
            store_hit: get_bool(&map, "store_hit")?,
        },
        "serve_evict" => JournalEvent::ServeEvict {
            submission: get_u64(&map, "submission")?,
            reason: get_str(&map, "reason")?.to_string(),
        },
        "phase_end" => JournalEvent::PhaseEnd {
            phase: get_str(&map, "phase")?.to_string(),
            wall_ns: get_u64(&map, "wall_ns")?,
        },
        "experiment_end" => JournalEvent::ExperimentEnd {
            rows: get_u64(&map, "rows")? as usize,
            failure_records: get_u64(&map, "failure_records")? as usize,
            wall_ns: get_u64(&map, "wall_ns")?,
        },
        other => return Err(ParseIssue::UnknownEvent(other.to_string())),
    };
    Ok(ev)
}

// ---------------------------------------------------------------------
// The journal buffer
// ---------------------------------------------------------------------

/// The per-experiment event buffer.
///
/// Disabled journals (`--no-journal`) drop every emission, so call sites
/// that would allocate to *construct* an event should guard on
/// [`enabled`](Journal::enabled) first.
#[derive(Debug, Default)]
pub struct Journal {
    enabled: bool,
    events: Vec<JournalEvent>,
    phase_starts: Vec<(&'static str, Instant)>,
}

impl Journal {
    /// Creates a journal; a disabled one ignores all emissions.
    pub fn new(enabled: bool) -> Self {
        Journal { enabled, events: Vec::new(), phase_starts: Vec::new() }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Appends one event (no-op when disabled).
    pub fn emit(&mut self, event: JournalEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Splices a batch of events recorded elsewhere (a worker's
    /// per-unit buffer) into the journal, preserving their order.
    pub fn extend(&mut self, events: Vec<JournalEvent>) {
        if self.enabled {
            self.events.extend(events);
        }
    }

    /// Marks the start of a named phase.
    pub fn phase_start(&mut self, phase: &'static str) {
        if self.enabled {
            self.phase_starts.push((phase, Instant::now()));
        }
    }

    /// Ends the innermost matching phase, emitting a
    /// [`JournalEvent::PhaseEnd`] with its wall time.
    pub fn phase_end(&mut self, phase: &'static str) {
        if !self.enabled {
            return;
        }
        if let Some(pos) = self.phase_starts.iter().rposition(|(p, _)| *p == phase) {
            let (_, start) = self.phase_starts.remove(pos);
            self.emit(JournalEvent::PhaseEnd {
                phase: phase.to_string(),
                wall_ns: start.elapsed().as_nanos() as u64,
            });
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[JournalEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the journal as JSON lines (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_json());
            s.push('\n');
        }
        s
    }
}

// ---------------------------------------------------------------------
// Metrics roll-up
// ---------------------------------------------------------------------

/// The aggregate view of one journal, written as `metrics.json` next to
/// the results CSV.
///
/// Pure function of the event stream, so `fex report` can recompute it
/// from `journal.jsonl` alone.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Experiment name (from `experiment_start`).
    pub experiment: String,
    /// Effective scheduler width.
    pub jobs: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Total events in the journal.
    pub events: usize,
    /// Summed build wall time.
    pub build_wall_ns: u64,
    /// Run-phase wall time.
    pub run_wall_ns: u64,
    /// Collect-phase wall time.
    pub collect_wall_ns: u64,
    /// Whole-experiment wall time.
    pub experiment_wall_ns: u64,
    /// Builds performed / build-cache hits.
    pub builds: usize,
    /// Build-cache hits among them.
    pub build_cache_hits: usize,
    /// Decode passes performed.
    pub decodes: usize,
    /// Executions served a pre-decoded program.
    pub decode_served: usize,
    /// Run units served a cached result by the artifact graph.
    pub graph_hits: usize,
    /// Run units the artifact graph had no node for.
    pub graph_misses: usize,
    /// attempts → number of units that settled with that many attempts.
    pub retry_histogram: BTreeMap<usize, usize>,
    /// outcome name → unit count.
    pub unit_outcomes: BTreeMap<String, usize>,
    /// Quarantined benchmarks, in quarantine order (deduplicated).
    pub quarantined: Vec<String>,
    /// benchmark → total measured cycles across its executions.
    pub per_benchmark_cycles: BTreeMap<String, u64>,
    /// Rows in the results frame.
    pub rows: usize,
    /// Records in the failure report.
    pub failure_records: usize,
    /// Total simulated backoff cycles charged.
    pub backoff_cycles: u64,
    /// Total faulted attempts (`run_fault` events).
    pub run_faults: usize,
}

impl Metrics {
    /// Aggregates a journal's event stream.
    pub fn from_journal(events: &[JournalEvent]) -> Metrics {
        let mut m = Metrics { events: events.len(), ..Metrics::default() };
        for e in events {
            match e {
                JournalEvent::ExperimentStart { name, jobs, seed, .. } => {
                    m.experiment = name.clone();
                    m.jobs = *jobs;
                    m.seed = *seed;
                }
                JournalEvent::Build { cache_hit, wall_ns, .. } => {
                    m.builds += 1;
                    m.build_cache_hits += usize::from(*cache_hit);
                    m.build_wall_ns += wall_ns;
                }
                JournalEvent::VmExec { benchmark, cycles, .. } => {
                    *m.per_benchmark_cycles.entry(benchmark.clone()).or_insert(0) += cycles;
                }
                JournalEvent::RunFault { .. } => m.run_faults += 1,
                JournalEvent::UnitOutcome {
                    benchmark, outcome, attempts, backoff_cycles, ..
                } => {
                    *m.retry_histogram.entry(*attempts).or_insert(0) += 1;
                    *m.unit_outcomes.entry(outcome.clone()).or_insert(0) += 1;
                    m.backoff_cycles = m.backoff_cycles.saturating_add(*backoff_cycles);
                    if outcome == "quarantined" && !m.quarantined.contains(benchmark) {
                        m.quarantined.push(benchmark.clone());
                    }
                }
                JournalEvent::GraphHit { .. } => m.graph_hits += 1,
                JournalEvent::GraphMiss { .. } => m.graph_misses += 1,
                JournalEvent::DecodeCache { decodes, served } => {
                    m.decodes = *decodes;
                    m.decode_served = *served;
                }
                JournalEvent::PhaseEnd { phase, wall_ns } => match phase.as_str() {
                    "run" => m.run_wall_ns = *wall_ns,
                    "collect" => m.collect_wall_ns = *wall_ns,
                    _ => {}
                },
                JournalEvent::ExperimentEnd { rows, failure_records, wall_ns } => {
                    m.rows = *rows;
                    m.failure_records = *failure_records;
                    m.experiment_wall_ns = *wall_ns;
                }
                _ => {}
            }
        }
        m
    }

    /// Decode-cache hit rate in `[0, 1]`: the fraction of served
    /// executions that reused an existing decode pass.
    pub fn decode_hit_rate(&self) -> f64 {
        if self.decode_served == 0 {
            0.0
        } else {
            self.decode_served.saturating_sub(self.decodes) as f64 / self.decode_served as f64
        }
    }

    /// Artifact-graph hit rate in `[0, 1]`: the fraction of graph lookups
    /// that served a cached run-unit result.
    pub fn graph_hit_rate(&self) -> f64 {
        let lookups = self.graph_hits + self.graph_misses;
        if lookups == 0 {
            0.0
        } else {
            self.graph_hits as f64 / lookups as f64
        }
    }

    /// Serializes as stable, human-diffable JSON. Keys ending in `_ns`
    /// carry wall times and are the only volatile fields; golden tests
    /// normalize them to 0.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"experiment\": {},", json_str(&self.experiment));
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"events\": {},", self.events);
        let _ = writeln!(s, "  \"build_wall_ns\": {},", self.build_wall_ns);
        let _ = writeln!(s, "  \"run_wall_ns\": {},", self.run_wall_ns);
        let _ = writeln!(s, "  \"collect_wall_ns\": {},", self.collect_wall_ns);
        let _ = writeln!(s, "  \"experiment_wall_ns\": {},", self.experiment_wall_ns);
        let _ = writeln!(s, "  \"builds\": {},", self.builds);
        let _ = writeln!(s, "  \"build_cache_hits\": {},", self.build_cache_hits);
        let _ = writeln!(s, "  \"decode_cache\": {{");
        let _ = writeln!(s, "    \"decodes\": {},", self.decodes);
        let _ = writeln!(s, "    \"served\": {},", self.decode_served);
        let _ = writeln!(s, "    \"hit_rate\": {:.4}", self.decode_hit_rate());
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"artifact_graph\": {{");
        let _ = writeln!(s, "    \"hits\": {},", self.graph_hits);
        let _ = writeln!(s, "    \"misses\": {},", self.graph_misses);
        let _ = writeln!(s, "    \"hit_rate\": {:.4}", self.graph_hit_rate());
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"retry_histogram\": {{");
        write_map(&mut s, self.retry_histogram.iter().map(|(k, v)| (k.to_string(), v.to_string())));
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"unit_outcomes\": {{");
        write_map(&mut s, self.unit_outcomes.iter().map(|(k, v)| (k.clone(), v.to_string())));
        let _ = writeln!(s, "  }},");
        let quarantined: Vec<String> = self.quarantined.iter().map(|b| json_str(b)).collect();
        let _ = writeln!(s, "  \"quarantined\": [{}],", quarantined.join(", "));
        let _ = writeln!(s, "  \"per_benchmark_cycles\": {{");
        write_map(
            &mut s,
            self.per_benchmark_cycles.iter().map(|(k, v)| (k.clone(), v.to_string())),
        );
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"rows\": {},", self.rows);
        let _ = writeln!(s, "  \"failure_records\": {},", self.failure_records);
        let _ = writeln!(s, "  \"backoff_cycles\": {},", self.backoff_cycles);
        let _ = writeln!(s, "  \"run_faults\": {}", self.run_faults);
        s.push_str("}\n");
        s
    }
}

/// Writes `"key": value,` lines for a JSON sub-object, without a
/// trailing comma on the last entry.
fn write_map(s: &mut String, entries: impl Iterator<Item = (String, String)>) {
    let entries: Vec<(String, String)> = entries.collect();
    let last = entries.len().saturating_sub(1);
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        let _ = writeln!(s, "    {}: {}{}", json_str(k), v, comma);
    }
}

// ---------------------------------------------------------------------
// `fex report <journal>` rendering
// ---------------------------------------------------------------------

/// A rendered journal report plus the warnings produced while reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedReport {
    /// The ASCII phase/time breakdown and per-unit timeline.
    pub report: String,
    /// One warning per skipped line (malformed JSON or unknown event).
    pub warnings: Vec<String>,
    /// Events that parsed. `0` means the journal was empty or entirely
    /// malformed — callers should refuse to render such a report.
    pub events: usize,
}

/// Formats a nanosecond wall time for the phase table.
fn fmt_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

/// Describes a unit's coordinates for the timeline.
fn unit_coord(benchmark: &str, build_type: &str, threads: usize, rep: Option<usize>) -> String {
    let rep = rep.map_or_else(|| "-".to_string(), |r| r.to_string());
    format!("{build_type}/{benchmark} m={threads} rep={rep}")
}

/// Renders the `fex report <journal>` view from `journal.jsonl` text:
/// experiment identity, the phase/time table, unit-outcome counts, the
/// retry histogram, decode-cache accounting and the per-unit timeline
/// with every unit's retry/quarantine history.
///
/// Malformed lines and unknown event types are skipped with a warning —
/// a truncated or future-versioned journal still renders everything that
/// can be read.
pub fn render_report(jsonl: &str) -> RenderedReport {
    let mut warnings = Vec::new();
    let mut events = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(e) => events.push(e),
            Err(issue) => warnings.push(format!("journal line {}: skipped: {issue}", i + 1)),
        }
    }
    let m = Metrics::from_journal(&events);

    let mut out = String::new();
    if m.experiment.is_empty() {
        let _ = writeln!(out, "experiment <unknown> (no experiment_start event)");
    } else {
        let _ = writeln!(out, "experiment `{}` — seed {}, jobs {}", m.experiment, m.seed, m.jobs);
    }
    let _ = writeln!(out, "journal: {} events, {} lines skipped", m.events, warnings.len());
    let _ = writeln!(out);

    // Phase/time breakdown.
    let _ = writeln!(out, "{:<12} {:>14}", "phase", "wall time");
    let _ = writeln!(out, "{:<12} {:>14}", "build", fmt_ms(m.build_wall_ns));
    let _ = writeln!(out, "{:<12} {:>14}", "run", fmt_ms(m.run_wall_ns));
    let _ = writeln!(out, "{:<12} {:>14}", "collect", fmt_ms(m.collect_wall_ns));
    let _ = writeln!(out, "{:<12} {:>14}", "total", fmt_ms(m.experiment_wall_ns));
    let _ = writeln!(out);

    // Roll-ups.
    let units: usize = m.unit_outcomes.values().sum();
    let counts: Vec<String> = ["clean", "recovered", "failed", "quarantined"]
        .iter()
        .filter_map(|k| m.unit_outcomes.get(*k).map(|n| format!("{n} {k}")))
        .collect();
    let _ = writeln!(out, "units: {units} settled — {}", counts.join(", "));
    let histogram: Vec<String> =
        m.retry_histogram.iter().map(|(attempts, n)| format!("{attempts}\u{d7}{n}")).collect();
    let _ = writeln!(out, "retry histogram (attempts\u{d7}units): {}", histogram.join("  "));
    if m.decode_served > 0 {
        let _ = writeln!(
            out,
            "decoded-artifact cache: {} decodes served {} executions ({:.1}% hit rate)",
            m.decodes,
            m.decode_served,
            100.0 * m.decode_hit_rate()
        );
    }
    if m.graph_hits + m.graph_misses > 0 {
        let _ = writeln!(
            out,
            "artifact graph: {} hits / {} misses ({:.1}% hit rate)",
            m.graph_hits,
            m.graph_misses,
            100.0 * m.graph_hit_rate()
        );
    }
    if !m.quarantined.is_empty() {
        let _ = writeln!(out, "quarantined: {}", m.quarantined.join(", "));
    }
    let _ = writeln!(out, "rows collected: {}, failure records: {}", m.rows, m.failure_records);
    let _ = writeln!(out);

    // Per-unit timeline: events arrive grouped per unit (claim, exec,
    // faults, outcome); accumulate the pending unit and flush a line at
    // its outcome.
    let _ = writeln!(out, "per-unit timeline:");
    let mut pending_worker: Option<usize> = None;
    let mut pending_cycles: Option<u64> = None;
    let mut pending_faults: Vec<(u64, String)> = Vec::new();
    for e in &events {
        match e {
            JournalEvent::UnitClaim { worker, .. } => pending_worker = Some(*worker),
            JournalEvent::VmExec { cycles, .. } => pending_cycles = Some(*cycles),
            JournalEvent::RunFault { attempt, error, .. } => {
                pending_faults.push((*attempt, error.clone()));
            }
            JournalEvent::UnitOutcome {
                benchmark,
                build_type,
                threads,
                rep,
                outcome,
                attempts,
                ..
            } => {
                let coord = unit_coord(benchmark, build_type, *threads, *rep);
                let mut line = format!("  {coord:<44} {outcome:<12} {attempts} attempt(s)");
                if let Some(c) = pending_cycles.take() {
                    let _ = write!(line, "  {c} cycles");
                }
                if let Some(w) = pending_worker.take() {
                    let _ = write!(line, "  [worker {w}]");
                }
                let _ = writeln!(out, "{line}");
                for (attempt, error) in pending_faults.drain(..) {
                    let _ = writeln!(out, "      attempt {attempt} faulted: {error}");
                }
            }
            JournalEvent::QuarantineSkip { benchmark, build_type } => {
                let _ = writeln!(
                    out,
                    "  {:<44} skipped (benchmark quarantined)",
                    format!("{build_type}/{benchmark}")
                );
            }
            _ => {}
        }
    }
    RenderedReport { report: out, warnings, events: events.len() }
}

// ---------------------------------------------------------------------
// Minimal flat-JSON plumbing (the workspace builds offline, no serde)
// ---------------------------------------------------------------------

/// Escapes a string as a JSON string literal (quotes included).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builder for one `{"event": "...", ...}` JSON line.
pub(crate) struct JsonLine {
    buf: String,
}

impl JsonLine {
    pub(crate) fn new(kind: &str) -> Self {
        JsonLine { buf: format!("{{\"event\": {}", json_str(kind)) }
    }

    /// Starts an object whose first key is `key` rather than `"event"`.
    pub(crate) fn object(key: &str, val: &str) -> Self {
        JsonLine { buf: format!("{{{}: {}", json_str(key), json_str(val)) }
    }

    pub(crate) fn str(&mut self, key: &str, val: &str) -> &mut Self {
        let _ = write!(self.buf, ", {}: {}", json_str(key), json_str(val));
        self
    }

    pub(crate) fn num(&mut self, key: &str, val: i64) -> &mut Self {
        let _ = write!(self.buf, ", {}: {}", json_str(key), val);
        self
    }

    pub(crate) fn opt_num(&mut self, key: &str, val: Option<i64>) -> &mut Self {
        match val {
            Some(v) => self.num(key, v),
            None => {
                let _ = write!(self.buf, ", {}: null", json_str(key));
                self
            }
        }
    }

    pub(crate) fn bool(&mut self, key: &str, val: bool) -> &mut Self {
        let _ = write!(self.buf, ", {}: {}", json_str(key), val);
        self
    }

    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Str(String),
    Int(i64),
    Bool(bool),
    Null,
}

fn malformed(msg: impl Into<String>) -> ParseIssue {
    ParseIssue::Malformed(msg.into())
}

/// Parses a single-line flat JSON object (string / integer / bool / null
/// values only — exactly what the journal writer emits).
pub(crate) fn parse_flat_object(
    line: &str,
) -> std::result::Result<BTreeMap<String, Json>, ParseIssue> {
    let mut chars = line.trim().chars().peekable();
    let mut map = BTreeMap::new();
    if chars.next() != Some('{') {
        return Err(malformed("expected `{`"));
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return finishing(chars, map);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(malformed(format!("expected `:` after key `{key}`")));
        }
        skip_ws(&mut chars);
        let val = parse_value(&mut chars)?;
        map.insert(key, val);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return finishing(chars, map),
            other => return Err(malformed(format!("expected `,` or `}}`, got {other:?}"))),
        }
    }
}

fn finishing(
    mut chars: std::iter::Peekable<std::str::Chars<'_>>,
    map: BTreeMap<String, Json>,
) -> std::result::Result<BTreeMap<String, Json>, ParseIssue> {
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err(malformed("trailing characters after object"));
    }
    Ok(map)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> std::result::Result<String, ParseIssue> {
    if chars.next() != Some('"') {
        return Err(malformed("expected string"));
    }
    let mut s = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(s),
            Some('\\') => match chars.next() {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some('/') => s.push('/'),
                Some('n') => s.push('\n'),
                Some('r') => s.push('\r'),
                Some('t') => s.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| malformed(format!("bad \\u escape `{hex}`")))?;
                    s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(malformed(format!("bad escape {other:?}"))),
            },
            Some(c) => s.push(c),
            None => return Err(malformed("unterminated string")),
        }
    }
}

fn parse_value(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> std::result::Result<Json, ParseIssue> {
    match chars.peek() {
        Some('"') => Ok(Json::Str(parse_string(chars)?)),
        Some('t') | Some('f') | Some('n') => {
            let mut word = String::new();
            while chars.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                word.push(chars.next().expect("peeked"));
            }
            match word.as_str() {
                "true" => Ok(Json::Bool(true)),
                "false" => Ok(Json::Bool(false)),
                "null" => Ok(Json::Null),
                other => Err(malformed(format!("unknown literal `{other}`"))),
            }
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let mut num = String::new();
            while chars.peek().is_some_and(|c| *c == '-' || c.is_ascii_digit()) {
                num.push(chars.next().expect("peeked"));
            }
            num.parse::<i64>().map(Json::Int).map_err(|_| malformed(format!("bad number `{num}`")))
        }
        other => Err(malformed(format!("unexpected value start {other:?}"))),
    }
}

pub(crate) fn get_str<'m>(
    map: &'m BTreeMap<String, Json>,
    key: &str,
) -> std::result::Result<&'m str, ParseIssue> {
    match map.get(key) {
        Some(Json::Str(s)) => Ok(s),
        Some(_) => Err(malformed(format!("field `{key}` is not a string"))),
        None => Err(malformed(format!("missing field `{key}`"))),
    }
}

pub(crate) fn get_i64(
    map: &BTreeMap<String, Json>,
    key: &str,
) -> std::result::Result<i64, ParseIssue> {
    match map.get(key) {
        Some(Json::Int(n)) => Ok(*n),
        Some(_) => Err(malformed(format!("field `{key}` is not a number"))),
        None => Err(malformed(format!("missing field `{key}`"))),
    }
}

pub(crate) fn get_u64(
    map: &BTreeMap<String, Json>,
    key: &str,
) -> std::result::Result<u64, ParseIssue> {
    let n = get_i64(map, key)?;
    u64::try_from(n).map_err(|_| malformed(format!("field `{key}` is negative")))
}

fn get_opt_u64(
    map: &BTreeMap<String, Json>,
    key: &str,
) -> std::result::Result<Option<u64>, ParseIssue> {
    match map.get(key) {
        Some(Json::Null) | None => Ok(None),
        Some(Json::Int(n)) => {
            u64::try_from(*n).map(Some).map_err(|_| malformed(format!("field `{key}` is negative")))
        }
        Some(_) => Err(malformed(format!("field `{key}` is not a number or null"))),
    }
}

fn get_bool(map: &BTreeMap<String, Json>, key: &str) -> std::result::Result<bool, ParseIssue> {
    match map.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(malformed(format!("field `{key}` is not a bool"))),
        None => Err(malformed(format!("missing field `{key}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::ExperimentStart {
                name: "micro".into(),
                jobs: 4,
                seed: 42,
                version: JOURNAL_VERSION,
            },
            JournalEvent::Build {
                benchmark: "arrayread".into(),
                build_type: "gcc_native".into(),
                digest: "fex256:00ff".into(),
                cache_hit: false,
                wall_ns: 1200,
            },
            JournalEvent::GraphMiss {
                benchmark: "arrayread".into(),
                build_type: "gcc_native".into(),
                threads: 2,
                rep: Some(0),
            },
            JournalEvent::UnitClaim {
                benchmark: "arrayread".into(),
                build_type: "gcc_native".into(),
                threads: 2,
                rep: Some(0),
                worker: 3,
            },
            JournalEvent::VmExec {
                benchmark: "arrayread".into(),
                build_type: "gcc_native".into(),
                threads: 2,
                rep: Some(0),
                instructions: 1000,
                cycles: 2500,
                l1_misses: 10,
                llc_misses: 2,
                branch_mispredicts: 1,
                faults: 0,
                exit: 7,
            },
            JournalEvent::UnitOutcome {
                benchmark: "arrayread".into(),
                build_type: "gcc_native".into(),
                threads: 2,
                rep: Some(0),
                outcome: "clean".into(),
                attempts: 1,
                backoff_cycles: 0,
            },
            JournalEvent::RunFault {
                benchmark: "ptrchase".into(),
                build_type: "gcc_native".into(),
                threads: 1,
                rep: None,
                attempt: 0,
                error: "vm trap: injected fault \"quoted\"\n".into(),
            },
            JournalEvent::UnitOutcome {
                benchmark: "ptrchase".into(),
                build_type: "gcc_native".into(),
                threads: 1,
                rep: None,
                outcome: "quarantined".into(),
                attempts: 3,
                backoff_cycles: 3_000_000,
            },
            JournalEvent::QuarantineSkip {
                benchmark: "ptrchase".into(),
                build_type: "clang_native".into(),
            },
            JournalEvent::DecodeCache { decodes: 2, served: 8 },
            JournalEvent::PhaseEnd { phase: "run".into(), wall_ns: 5_000_000 },
            JournalEvent::ExperimentEnd { rows: 8, failure_records: 1, wall_ns: 6_000_000 },
        ]
    }

    #[test]
    fn every_event_round_trips_through_json() {
        for e in sample_events() {
            let line = e.to_json();
            let back = parse_line(&line).unwrap_or_else(|i| panic!("{i} for {line}"));
            assert_eq!(e, back, "round trip of {line}");
        }
    }

    #[test]
    fn store_write_round_trips_through_json() {
        let e = JournalEvent::StoreWrite {
            experiment: "micro".into(),
            run_id: "fex256:00000000000000000000000000abcdef".into(),
            seq: 7,
        };
        assert_eq!(e.kind(), "store_write");
        let back = parse_line(&e.to_json()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn string_escapes_survive_the_round_trip() {
        let e = JournalEvent::RunFault {
            benchmark: "a\\b".into(),
            build_type: "t\"y".into(),
            threads: 1,
            rep: Some(2),
            attempt: 1,
            error: "line1\nline2\ttab \u{1} control".into(),
        };
        let back = parse_line(&e.to_json()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn malformed_lines_are_reported_not_panicked() {
        for bad in [
            "",
            "{",
            "not json at all",
            "{\"event\": \"vm_exec\"",               // truncated
            "{\"event\": \"vm_exec\"} trailing",     // garbage after
            "{\"event\": \"build\", \"wall_ns\": }", // missing value
            "{\"event\": \"build\"}",                // missing fields
            "{\"event\": \"phase_end\", \"phase\": \"run\", \"wall_ns\": \"soon\"}", // mistyped
            "{\"event\": \"phase_end\", \"phase\": \"run\", \"wall_ns\": -5}", // negative
        ] {
            match parse_line(bad) {
                Err(ParseIssue::Malformed(_)) => {}
                other => panic!("expected Malformed for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_event_types_are_distinguished_from_malformed() {
        let line = "{\"event\": \"teleport\", \"to\": \"mars\"}";
        assert_eq!(parse_line(line), Err(ParseIssue::UnknownEvent("teleport".into())));
    }

    #[test]
    fn disabled_journal_drops_everything() {
        let mut j = Journal::new(false);
        j.emit(JournalEvent::DecodeCache { decodes: 1, served: 1 });
        j.phase_start("run");
        j.phase_end("run");
        j.extend(sample_events());
        assert!(j.is_empty());
        assert_eq!(j.to_jsonl(), "");
    }

    #[test]
    fn phase_timing_emits_matched_pairs() {
        let mut j = Journal::new(true);
        j.phase_start("run");
        j.phase_end("run");
        j.phase_end("never_started"); // silently ignored
        assert_eq!(j.len(), 1);
        assert!(matches!(&j.events()[0], JournalEvent::PhaseEnd { phase, .. } if phase == "run"));
    }

    #[test]
    fn metrics_aggregate_the_stream() {
        let m = Metrics::from_journal(&sample_events());
        assert_eq!(m.experiment, "micro");
        assert_eq!(m.jobs, 4);
        assert_eq!(m.events, 12);
        assert_eq!((m.graph_hits, m.graph_misses), (0, 1));
        assert_eq!(m.retry_histogram.get(&1), Some(&1));
        assert_eq!(m.unit_outcomes.get("clean"), Some(&1));
        assert_eq!(m.builds, 1);
        assert_eq!(m.build_wall_ns, 1200);
        assert_eq!(m.run_wall_ns, 5_000_000);
        assert_eq!(m.rows, 8);
        assert_eq!(m.retry_histogram.get(&3), Some(&1));
        assert_eq!(m.unit_outcomes.get("quarantined"), Some(&1));
        assert_eq!(m.quarantined, vec!["ptrchase"]);
        assert_eq!(m.per_benchmark_cycles.get("arrayread"), Some(&2500));
        assert_eq!(m.run_faults, 1);
        assert!((m.decode_hit_rate() - 0.75).abs() < 1e-12);

        let json = m.to_json();
        assert!(json.contains("\"experiment\": \"micro\""));
        assert!(json.contains("\"hit_rate\": 0.7500"));
        assert!(json.contains("\"quarantined\": [\"ptrchase\"]"));
    }

    #[test]
    fn normalize_zeroes_only_the_volatile_fields() {
        let mut events = sample_events();
        for e in &mut events {
            e.normalize();
        }
        let m = Metrics::from_journal(&events);
        assert_eq!(m.build_wall_ns, 0);
        assert_eq!(m.run_wall_ns, 0);
        assert_eq!(m.jobs, 0);
        // Measured counters are untouched.
        assert_eq!(m.per_benchmark_cycles.get("arrayread"), Some(&2500));
        assert_eq!(m.backoff_cycles, 3_000_000);
    }

    #[test]
    fn graph_events_round_trip_and_normalize_to_misses() {
        let hit = JournalEvent::GraphHit {
            benchmark: "fft".into(),
            build_type: "gcc_native".into(),
            threads: 2,
            rep: None,
        };
        let miss = JournalEvent::GraphMiss {
            benchmark: "fft".into(),
            build_type: "gcc_native".into(),
            threads: 2,
            rep: None,
        };
        assert_eq!((hit.kind(), miss.kind()), ("graph_hit", "graph_miss"));
        assert_eq!(parse_line(&hit.to_json()).unwrap(), hit);
        assert_eq!(parse_line(&miss.to_json()).unwrap(), miss);
        // Warm runs differ from cold only in hit-vs-miss; normalization
        // must erase exactly that and nothing else.
        let mut normalized = hit.clone();
        normalized.normalize();
        assert_eq!(normalized, miss);
        let mut miss_normalized = miss.clone();
        miss_normalized.normalize();
        assert_eq!(miss_normalized, miss);
    }

    fn serve_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::ServeSubmit {
                tenant: "alice".into(),
                submission: 3,
                key: "fex256:00000000000000000000000000000abc".into(),
            },
            JournalEvent::ServeEnqueue { submission: 3, priority: 5, depth: 2 },
            JournalEvent::ServeDispatch { submission: 3, worker: 1, wait_ns: 120_000 },
            JournalEvent::ServeStream {
                tenant: "alice".into(),
                submission: 3,
                events: 17,
                graph_hits: 8,
                graph_misses: 0,
                store_hit: true,
            },
            JournalEvent::ServeEvict { submission: 4, reason: "queue full".into() },
        ]
    }

    #[test]
    fn serve_events_round_trip_through_json() {
        let kinds: Vec<&str> = serve_events().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            ["serve_submit", "serve_enqueue", "serve_dispatch", "serve_stream", "serve_evict"]
        );
        for e in serve_events() {
            let line = e.to_json();
            let back = parse_line(&line).unwrap_or_else(|i| panic!("{i} for {line}"));
            assert_eq!(e, back, "round trip of {line}");
        }
    }

    #[test]
    fn serve_normalization_erases_tenant_queue_and_cache_state() {
        // Two tenants submitting the same work in any order, served hot
        // or cold, must normalize to identical serve streams — the same
        // order-invariance contract StoreWrite's zeroed seq provides.
        let mut normalized = serve_events();
        for e in &mut normalized {
            e.normalize();
        }
        assert_eq!(
            normalized,
            vec![
                JournalEvent::ServeSubmit {
                    tenant: String::new(),
                    submission: 0,
                    key: "fex256:00000000000000000000000000000abc".into(),
                },
                JournalEvent::ServeEnqueue { submission: 0, priority: 5, depth: 0 },
                JournalEvent::ServeDispatch { submission: 0, worker: 0, wait_ns: 0 },
                JournalEvent::ServeStream {
                    tenant: String::new(),
                    submission: 0,
                    events: 0,
                    graph_hits: 0,
                    graph_misses: 0,
                    store_hit: false,
                },
                JournalEvent::ServeEvict { submission: 0, reason: "queue full".into() },
            ]
        );
        // The content-addressed key and the client-chosen priority are
        // submission identity, not scheduling history — they survive.
    }

    #[test]
    fn report_renders_phases_and_per_unit_history_from_jsonl_alone() {
        let jsonl: String = sample_events().iter().map(|e| e.to_json() + "\n").collect::<String>();
        let rendered = render_report(&jsonl);
        assert!(rendered.warnings.is_empty(), "{:?}", rendered.warnings);
        let r = &rendered.report;
        assert!(r.contains("experiment `micro` — seed 42, jobs 4"), "{r}");
        assert!(r.contains(&format!("{:<12} {:>14}", "run", "5.000 ms")), "{r}");
        assert!(r.contains(&format!("{:<12} {:>14}", "total", "6.000 ms")), "{r}");
        assert!(r.contains("quarantined: ptrchase"), "{r}");
        assert!(r.contains("gcc_native/arrayread m=2 rep=0"), "{r}");
        assert!(r.contains("[worker 3]"), "{r}");
        assert!(r.contains("attempt 0 faulted: vm trap: injected fault"), "{r}");
        assert!(r.contains("clang_native/ptrchase"), "{r}");
        assert!(r.contains("skipped (benchmark quarantined)"), "{r}");
    }

    #[test]
    fn report_skips_malformed_and_unknown_lines_with_warnings() {
        let mut jsonl = String::new();
        jsonl.push_str(&sample_events()[0].to_json());
        jsonl.push('\n');
        jsonl.push_str("{\"event\": \"vm_exec\", \"benchmark\": \"trunc"); // truncated JSON
        jsonl.push('\n');
        jsonl.push_str("{\"event\": \"from_the_future\", \"x\": 1}\n");
        jsonl.push('\n'); // blank lines are fine
        jsonl.push_str(&sample_events()[11].to_json());
        jsonl.push('\n');
        let rendered = render_report(&jsonl);
        assert_eq!(rendered.warnings.len(), 2, "{:?}", rendered.warnings);
        assert!(rendered.warnings[0].contains("line 2"));
        assert!(rendered.warnings[0].contains("malformed"));
        assert!(rendered.warnings[1].contains("unknown event type `from_the_future`"));
        assert!(rendered.report.contains("experiment `micro`"));
        assert!(rendered.report.contains("rows collected: 8"));
    }
}
