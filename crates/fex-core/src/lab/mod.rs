//! The lab subsystem: a persistent, content-addressed result store plus
//! the statistical comparison workflow built on top of it.
//!
//! The paper treats every `fex run` as ephemeral — results live in the
//! simulated container and vanish with the process. The lab closes the
//! loop for the paper's "evaluation-driven development" vision: completed
//! experiments are archived on the real filesystem (default `.fex-lab/`)
//! keyed by a content digest of their configuration and results, and
//! `fex compare <baseline> <candidate>` replays Welch's t-test over any
//! two archived (or on-disk CSV) runs to produce a per-benchmark verdict
//! table, a CI-whisker comparison plot, and a nonzero exit status on a
//! statistically significant regression — a regression gate that drops
//! straight into CI.
//!
//! * [`store`] — the [`RunStore`]: append-only flat-JSON index plus one
//!   directory per archived run,
//! * [`compare`] — the [`Comparison`] engine: per-(benchmark, build type)
//!   Welch's t-test, relative delta, Cohen's d effect size and a
//!   four-way [`Verdict`],
//! * [`fsck`] — `fex lab fsck`: integrity checking, quarantine, and the
//!   deterministic disk-corruption injector that exercises both.

pub mod compare;
pub mod fsck;
pub mod store;

pub use compare::{CellComparison, Comparison, SampleStats, Verdict};
pub use fsck::{Corruption, FsckIssue, FsckReport, GraphCorruption, IssueKind};
pub use store::{IndexEntry, RunArtifacts, RunStore};
