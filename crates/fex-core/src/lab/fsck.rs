//! `fex lab fsck` — store integrity checking, quarantine, and the disk
//! fault injector that tests it.
//!
//! The store is append-only and content-addressed, which makes every
//! corruption *detectable*: a torn index append, a run directory lost to
//! a partial `rm`, an artifact edited behind the store's back — each
//! breaks an invariant this module recomputes from scratch. `check`
//! reports; `fsck(store, quarantine=true)` additionally moves the broken
//! runs into `<root>/quarantine/` and rewrites the index to the surviving
//! entries, restoring a clean store without deleting evidence.
//!
//! [`Corruption`] is the matching fault injector — the same torn-write
//! and missing-file shapes the checker must catch, applied
//! deterministically so both the unit tests here and the `fex fuzz`
//! recovery oracle can drive the checker against every failure mode.

use std::fmt;
use std::fs;

use crate::error::{FexError, Result};
use crate::graph;
use crate::journal::{self, Json};

use super::store::{IndexEntry, RunStore};

/// What kind of damage an [`FsckIssue`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// An index line that does not parse (torn append, editor damage).
    CorruptIndexLine,
    /// An index entry whose artifact directory is gone.
    MissingRunDir,
    /// A run directory missing one of its artifact files.
    MissingArtifact,
    /// Artifact bytes that no longer hash to the entry's run id.
    DigestMismatch,
    /// Row/failure counts in the index disagreeing with the stored CSVs.
    CountMismatch,
    /// An unreadable, unparseable or contradictory `record.json`.
    CorruptRecord,
    /// A `runs/` directory no surviving index entry references.
    OrphanRunDir,
    /// A graph index line that does not parse (torn append).
    CorruptGraphIndexLine,
    /// A graph index entry whose node payload is gone.
    MissingGraphNode,
    /// Node payload bytes that no longer hash to the indexed payload
    /// digest (the node was edited or torn behind the graph's back).
    GraphDigestMismatch,
    /// A `graph/nodes/` directory no surviving index entry references.
    OrphanGraphNode,
}

impl IssueKind {
    /// Whether this issue lives in the artifact graph (subjects are node
    /// digests) rather than the run store (subjects are run ids).
    fn is_graph(self) -> bool {
        matches!(
            self,
            IssueKind::CorruptGraphIndexLine
                | IssueKind::MissingGraphNode
                | IssueKind::GraphDigestMismatch
                | IssueKind::OrphanGraphNode
        )
    }
}

impl fmt::Display for IssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IssueKind::CorruptIndexLine => "corrupt-index-line",
            IssueKind::MissingRunDir => "missing-run-dir",
            IssueKind::MissingArtifact => "missing-artifact",
            IssueKind::DigestMismatch => "digest-mismatch",
            IssueKind::CountMismatch => "count-mismatch",
            IssueKind::CorruptRecord => "corrupt-record",
            IssueKind::OrphanRunDir => "orphan-run-dir",
            IssueKind::CorruptGraphIndexLine => "corrupt-graph-index-line",
            IssueKind::MissingGraphNode => "missing-graph-node",
            IssueKind::GraphDigestMismatch => "graph-digest-mismatch",
            IssueKind::OrphanGraphNode => "orphan-graph-node",
        })
    }
}

/// One detected integrity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckIssue {
    /// What is wrong.
    pub kind: IssueKind,
    /// The run id (or `index line N` for index-level damage).
    pub subject: String,
    /// Human-readable detail.
    pub detail: String,
}

/// The result of one integrity pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Index entries examined.
    pub entries_checked: usize,
    /// Artifact-graph nodes examined (0 when the lab has no graph).
    pub graph_nodes_checked: usize,
    /// Everything found wrong, in detection order.
    pub issues: Vec<FsckIssue>,
    /// Run ids (and orphan directory names) moved to `quarantine/`.
    pub quarantined: Vec<String>,
}

impl FsckReport {
    /// Whether the store passed without findings.
    pub fn clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Renders the `fex lab fsck` output.
    pub fn render(&self) -> String {
        let mut s = format!("checked {} index entries\n", self.entries_checked);
        if self.graph_nodes_checked > 0 {
            s.push_str(&format!("checked {} graph nodes\n", self.graph_nodes_checked));
        }
        for issue in &self.issues {
            s.push_str(&format!("{}: {} ({})\n", issue.kind, issue.subject, issue.detail));
        }
        if !self.quarantined.is_empty() {
            s.push_str(&format!(
                "quarantined {} corrupt entries (moved under quarantine/)\n",
                self.quarantined.len()
            ));
        }
        if self.clean() {
            s.push_str("store is clean\n");
        } else {
            s.push_str(&format!("{} issues found\n", self.issues.len()));
        }
        s
    }
}

/// Checks every invariant of the store without touching it.
pub fn check(store: &RunStore) -> FsckReport {
    let mut report = FsckReport::default();
    let (entries, warnings) = store.scan();
    report.entries_checked = entries.len();
    let index_lines = fs::read_to_string(store.index_path()).unwrap_or_default();
    for (i, line) in index_lines.lines().enumerate() {
        if !line.trim().is_empty() && IndexEntry::parse(line).is_err() {
            report.issues.push(FsckIssue {
                kind: IssueKind::CorruptIndexLine,
                subject: format!("index line {}", i + 1),
                detail: warnings
                    .iter()
                    .find(|w| w.contains(&format!("line {}", i + 1)))
                    .cloned()
                    .unwrap_or_else(|| "unparseable".into()),
            });
        }
    }
    for entry in &entries {
        check_entry(store, entry, &mut report);
    }
    // Orphans: artifact directories no parseable entry references.
    let referenced: std::collections::BTreeSet<String> =
        entries.iter().map(|e| e.run_id.trim_start_matches("fex256:").to_string()).collect();
    if let Ok(dirs) = fs::read_dir(store.root().join("runs")) {
        let mut orphans: Vec<String> = dirs
            .filter_map(|d| d.ok())
            .map(|d| d.file_name().to_string_lossy().into_owned())
            .filter(|name| !referenced.contains(name))
            .collect();
        orphans.sort();
        for name in orphans {
            report.issues.push(FsckIssue {
                kind: IssueKind::OrphanRunDir,
                subject: format!("fex256:{name}"),
                detail: "no index entry references this directory".into(),
            });
        }
    }
    check_graph(store, &mut report);
    report
}

/// The artifact-graph pass: same invariants as the run store, applied to
/// `<root>/graph/`. A lab without a graph (pre-graph labs, `--no-graph`
/// runs) skips silently.
fn check_graph(store: &RunStore, report: &mut FsckReport) {
    let groot = store.root().join(graph::ArtifactGraph::SUBDIR);
    if !groot.is_dir() {
        return;
    }
    let index_lines = fs::read_to_string(groot.join("index.json")).unwrap_or_default();
    for (i, line) in index_lines.lines().enumerate() {
        if !line.trim().is_empty() && graph::GraphIndexEntry::parse(line).is_err() {
            report.issues.push(FsckIssue {
                kind: IssueKind::CorruptGraphIndexLine,
                subject: format!("graph index line {}", i + 1),
                detail: "unparseable".into(),
            });
        }
    }
    let (entries, _) = graph::ArtifactGraph::scan_at(&groot);
    report.graph_nodes_checked = entries.len();
    for entry in &entries {
        let payload_path = graph::node_dir_at(&groot, &entry.digest).join("payload.json");
        match fs::read_to_string(&payload_path) {
            Err(e) => report.issues.push(FsckIssue {
                kind: IssueKind::MissingGraphNode,
                subject: entry.digest.clone(),
                detail: format!("cannot read `payload.json`: {e}"),
            }),
            Ok(payload) => {
                let recomputed = fex_container::digest_bytes(payload.as_bytes()).to_string();
                if recomputed != entry.payload_digest {
                    report.issues.push(FsckIssue {
                        kind: IssueKind::GraphDigestMismatch,
                        subject: entry.digest.clone(),
                        detail: format!(
                            "payload hashes to {recomputed}; the node was edited or torn"
                        ),
                    });
                }
            }
        }
    }
    // Orphans: node directories no parseable graph entry references.
    let referenced: std::collections::BTreeSet<String> =
        entries.iter().map(|e| e.digest.trim_start_matches("fex256:").to_string()).collect();
    if let Ok(dirs) = fs::read_dir(groot.join("nodes")) {
        let mut orphans: Vec<String> = dirs
            .filter_map(|d| d.ok())
            .map(|d| d.file_name().to_string_lossy().into_owned())
            .filter(|name| !referenced.contains(name))
            .collect();
        orphans.sort();
        for name in orphans {
            report.issues.push(FsckIssue {
                kind: IssueKind::OrphanGraphNode,
                subject: format!("fex256:{name}"),
                detail: "no graph index entry references this node".into(),
            });
        }
    }
}

fn check_entry(store: &RunStore, entry: &IndexEntry, report: &mut FsckReport) {
    let dir = store.run_dir(&entry.run_id);
    let mut issue = |kind, detail: String| {
        report.issues.push(FsckIssue { kind, subject: entry.run_id.clone(), detail });
    };
    if !dir.is_dir() {
        issue(IssueKind::MissingRunDir, format!("`{}` does not exist", dir.display()));
        return;
    }
    let read = |name: &str| fs::read_to_string(dir.join(name));
    let results = read("results.csv");
    let failures = read("failures.csv");
    for (name, content) in [("results.csv", &results), ("failures.csv", &failures)] {
        if let Err(e) = content {
            issue(IssueKind::MissingArtifact, format!("cannot read `{name}`: {e}"));
        }
    }
    if let (Ok(results), Ok(failures)) = (&results, &failures) {
        let recomputed = RunStore::run_id_from_parts(&entry.key, results, failures);
        if recomputed != entry.run_id {
            issue(
                IssueKind::DigestMismatch,
                format!("artifacts hash to {recomputed}; the run was edited or torn"),
            );
        }
        let rows = results.lines().count().saturating_sub(1);
        let failure_rows = failures.lines().count().saturating_sub(1);
        if rows != entry.rows || failure_rows != entry.failures {
            issue(
                IssueKind::CountMismatch,
                format!(
                    "index says {} rows / {} failures, artifacts have {rows} / {failure_rows}",
                    entry.rows, entry.failures
                ),
            );
        }
    }
    match read("record.json") {
        Err(e) => issue(IssueKind::CorruptRecord, format!("cannot read `record.json`: {e}")),
        Ok(text) => match journal::parse_flat_object(text.trim()) {
            Err(e) => issue(IssueKind::CorruptRecord, format!("unparseable: {e}")),
            Ok(map) => {
                match map.get("run_id") {
                    Some(Json::Str(id)) if *id == entry.run_id => {}
                    other => issue(
                        IssueKind::CorruptRecord,
                        format!("record run_id {other:?} disagrees with the index"),
                    ),
                }
                // A journaled run must keep its metrics roll-up.
                if matches!(map.get("journal_digest"), Some(Json::Str(d)) if !d.is_empty())
                    && !dir.join("metrics.json").is_file()
                {
                    issue(
                        IssueKind::MissingArtifact,
                        "journaled run lost its `metrics.json`".into(),
                    );
                }
            }
        },
    }
}

/// Checks the store and, when `quarantine` is set, moves every corrupt
/// run directory (and orphan) under `<root>/quarantine/` and rewrites the
/// index to the clean entries. Returns the final report.
///
/// # Errors
///
/// [`FexError::Data`] on filesystem failures while quarantining.
pub fn fsck(store: &RunStore, quarantine: bool) -> Result<FsckReport> {
    let mut report = check(store);
    if !quarantine || report.clean() {
        return Ok(report);
    }
    let qdir = store.root().join("quarantine");
    fs::create_dir_all(&qdir)
        .map_err(|e| FexError::Data(format!("cannot create `{}`: {e}", qdir.display())))?;
    let bad_runs: std::collections::BTreeSet<&str> = report
        .issues
        .iter()
        .filter(|i| i.kind != IssueKind::CorruptIndexLine && !i.kind.is_graph())
        .map(|i| i.subject.as_str())
        .collect();
    for run_id in &bad_runs {
        let short = run_id.trim_start_matches("fex256:");
        let src = store.run_dir(run_id);
        if src.is_dir() {
            fs::rename(&src, qdir.join(short)).map_err(|e| {
                FexError::Data(format!("cannot quarantine `{}`: {e}", src.display()))
            })?;
        }
        report.quarantined.push((*run_id).to_string());
    }
    // Rewriting the index drops corrupt lines and bad entries in one go.
    let (entries, _) = store.scan();
    let survivors: String = entries
        .iter()
        .filter(|e| !bad_runs.contains(e.run_id.as_str()))
        .map(|e| e.to_json() + "\n")
        .collect();
    fs::write(store.index_path(), survivors)
        .map_err(|e| FexError::Data(format!("store write failed: {e}")))?;
    // The graph gets the same treatment: bad node directories move under
    // `quarantine/graph-<digest>` and the graph index is rewritten to
    // its survivors.
    let groot = store.root().join(graph::ArtifactGraph::SUBDIR);
    if groot.is_dir() && report.issues.iter().any(|i| i.kind.is_graph()) {
        let bad_nodes: std::collections::BTreeSet<&str> = report
            .issues
            .iter()
            .filter(|i| i.kind.is_graph() && i.kind != IssueKind::CorruptGraphIndexLine)
            .map(|i| i.subject.as_str())
            .collect();
        for digest in &bad_nodes {
            let short = digest.trim_start_matches("fex256:");
            let src = graph::node_dir_at(&groot, digest);
            if src.is_dir() {
                fs::rename(&src, qdir.join(format!("graph-{short}"))).map_err(|e| {
                    FexError::Data(format!("cannot quarantine `{}`: {e}", src.display()))
                })?;
            }
            report.quarantined.push((*digest).to_string());
        }
        let (entries, _) = graph::ArtifactGraph::scan_at(&groot);
        let survivors: String = entries
            .iter()
            .filter(|e| !bad_nodes.contains(e.digest.as_str()))
            .map(|e| e.to_json() + "\n")
            .collect();
        fs::write(groot.join("index.json"), survivors)
            .map_err(|e| FexError::Data(format!("graph index write failed: {e}")))?;
    }
    Ok(report)
}

// ---------------------------------------------------------------------
// Disk fault injection
// ---------------------------------------------------------------------

/// A deterministic store corruption, for tests and the fuzz recovery
/// oracle. Each variant is one realistic failure shape; [`inject`]
/// applies it to the newest run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Tear the final index append mid-record (crash during `save`).
    TruncatedIndex,
    /// Append a non-JSON line to the index (editor/merge damage).
    GarbageIndexLine,
    /// Delete the newest run's `results.csv`.
    MissingResultsCsv,
    /// Delete the newest run's whole artifact directory.
    MissingRunDir,
    /// Tear the newest run's `record.json` in half (partial write).
    TornRecord,
    /// Delete the newest journaled run's `metrics.json`.
    MissingMetrics,
}

impl Corruption {
    /// Every injectable corruption, in a stable order (the fuzzer indexes
    /// into this with its seeded dice).
    pub const ALL: [Corruption; 6] = [
        Corruption::TruncatedIndex,
        Corruption::GarbageIndexLine,
        Corruption::MissingResultsCsv,
        Corruption::MissingRunDir,
        Corruption::TornRecord,
        Corruption::MissingMetrics,
    ];
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Corruption::TruncatedIndex => "truncated-index",
            Corruption::GarbageIndexLine => "garbage-index-line",
            Corruption::MissingResultsCsv => "missing-results-csv",
            Corruption::MissingRunDir => "missing-run-dir",
            Corruption::TornRecord => "torn-record",
            Corruption::MissingMetrics => "missing-metrics",
        })
    }
}

/// Applies `corruption` to the newest run of `store`.
///
/// # Errors
///
/// [`FexError::Data`] when the store is empty or the filesystem refuses.
pub fn inject(store: &RunStore, corruption: Corruption) -> Result<()> {
    let latest = store.resolve("latest")?;
    let dir = store.run_dir(&latest.run_id);
    let io = |e: std::io::Error| FexError::Data(format!("fault injection failed: {e}"));
    match corruption {
        Corruption::TruncatedIndex => {
            let index = fs::read_to_string(store.index_path()).map_err(io)?;
            let torn = index.len().saturating_sub(9);
            fs::write(store.index_path(), &index[..torn]).map_err(io)?;
        }
        Corruption::GarbageIndexLine => {
            let mut index = fs::read_to_string(store.index_path()).map_err(io)?;
            index.push_str("{\"run_id\": 42, definitely not an index line\n");
            fs::write(store.index_path(), index).map_err(io)?;
        }
        Corruption::MissingResultsCsv => {
            fs::remove_file(dir.join("results.csv")).map_err(io)?;
        }
        Corruption::MissingRunDir => {
            fs::remove_dir_all(&dir).map_err(io)?;
        }
        Corruption::TornRecord => {
            let record = fs::read_to_string(dir.join("record.json")).map_err(io)?;
            fs::write(dir.join("record.json"), &record[..record.len() / 2]).map_err(io)?;
        }
        Corruption::MissingMetrics => {
            fs::remove_file(dir.join("metrics.json")).map_err(io)?;
        }
    }
    Ok(())
}

/// A deterministic artifact-graph corruption. Kept separate from
/// [`Corruption`] — the fuzzer's seeded dice index into
/// [`Corruption::ALL`] by position, so that array must never grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphCorruption {
    /// Tear the final graph index append mid-record.
    TruncatedGraphIndex,
    /// Append a non-JSON line to the graph index.
    GarbageGraphIndexLine,
    /// Delete the newest node's `payload.json`.
    MissingNodePayload,
    /// Append bytes to the newest node's payload (silent edit).
    EditedNodePayload,
    /// Drop an unreferenced node directory into `graph/nodes/`.
    OrphanNodeDir,
}

impl GraphCorruption {
    /// Every injectable graph corruption, in a stable order.
    pub const ALL: [GraphCorruption; 5] = [
        GraphCorruption::TruncatedGraphIndex,
        GraphCorruption::GarbageGraphIndexLine,
        GraphCorruption::MissingNodePayload,
        GraphCorruption::EditedNodePayload,
        GraphCorruption::OrphanNodeDir,
    ];
}

impl fmt::Display for GraphCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GraphCorruption::TruncatedGraphIndex => "truncated-graph-index",
            GraphCorruption::GarbageGraphIndexLine => "garbage-graph-index-line",
            GraphCorruption::MissingNodePayload => "missing-node-payload",
            GraphCorruption::EditedNodePayload => "edited-node-payload",
            GraphCorruption::OrphanNodeDir => "orphan-node-dir",
        })
    }
}

/// Applies `corruption` to the newest node of `store`'s artifact graph.
///
/// # Errors
///
/// [`FexError::Data`] when the graph is missing or empty, or the
/// filesystem refuses.
pub fn inject_graph(store: &RunStore, corruption: GraphCorruption) -> Result<()> {
    let groot = store.root().join(graph::ArtifactGraph::SUBDIR);
    let index_path = groot.join("index.json");
    let io = |e: std::io::Error| FexError::Data(format!("graph fault injection failed: {e}"));
    let (entries, _) = graph::ArtifactGraph::scan_at(&groot);
    let newest = || {
        entries
            .iter()
            .max_by_key(|e| e.seq)
            .ok_or_else(|| FexError::Data("the artifact graph is empty".into()))
    };
    match corruption {
        GraphCorruption::TruncatedGraphIndex => {
            let index = fs::read_to_string(&index_path).map_err(io)?;
            let torn = index.len().saturating_sub(9);
            fs::write(&index_path, &index[..torn]).map_err(io)?;
        }
        GraphCorruption::GarbageGraphIndexLine => {
            let mut index = fs::read_to_string(&index_path).map_err(io)?;
            index.push_str("{\"digest\": 42, definitely not a graph entry\n");
            fs::write(&index_path, index).map_err(io)?;
        }
        GraphCorruption::MissingNodePayload => {
            let dir = graph::node_dir_at(&groot, &newest()?.digest);
            fs::remove_file(dir.join("payload.json")).map_err(io)?;
        }
        GraphCorruption::EditedNodePayload => {
            let path = graph::node_dir_at(&groot, &newest()?.digest).join("payload.json");
            let mut payload = fs::read_to_string(&path).map_err(io)?;
            payload.push_str("# tampered\n");
            fs::write(&path, payload).map_err(io)?;
        }
        GraphCorruption::OrphanNodeDir => {
            let dir = groot.join("nodes").join("00000000000000000000000000000bad");
            fs::create_dir_all(&dir).map_err(io)?;
            fs::write(dir.join("payload.json"), "{\"node\":\"stray\"}\n").map_err(io)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::lab::RunArtifacts;
    use fex_suites::InputSize;

    fn temp_store(tag: &str) -> RunStore {
        let dir = std::env::temp_dir().join(format!("fex-fsck-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    fn populated(tag: &str) -> RunStore {
        let store = temp_store(tag);
        let cfg = ExperimentConfig::new("micro").input(InputSize::Test);
        let art = |results: &'static str| RunArtifacts {
            results_csv: results,
            failures_csv: "benchmark,type,threads,rep,error,attempts,outcome\n",
            metrics_json: Some("{}"),
            journal_digest: Some("fex256:00000000000000000000000000000abc"),
        };
        store.save(&cfg, &art("h\n1\n")).unwrap();
        store.save(&cfg.clone().seed(99), &art("h\n2\n")).unwrap();
        store
    }

    #[test]
    fn clean_store_passes() {
        let store = populated("clean");
        let report = check(&store);
        assert!(report.clean(), "{}", report.render());
        assert_eq!(report.entries_checked, 2);
        assert!(report.render().contains("store is clean"));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn every_injected_corruption_is_detected() {
        for corruption in Corruption::ALL {
            let store = populated(&format!("inject-{corruption}"));
            inject(&store, corruption).unwrap();
            let report = check(&store);
            assert!(!report.clean(), "{corruption} went undetected");
            let expected = match corruption {
                Corruption::TruncatedIndex => IssueKind::CorruptIndexLine,
                Corruption::GarbageIndexLine => IssueKind::CorruptIndexLine,
                Corruption::MissingResultsCsv => IssueKind::MissingArtifact,
                Corruption::MissingRunDir => IssueKind::MissingRunDir,
                Corruption::TornRecord => IssueKind::CorruptRecord,
                Corruption::MissingMetrics => IssueKind::MissingArtifact,
            };
            assert!(
                report.issues.iter().any(|i| i.kind == expected),
                "{corruption}: wanted {expected}, got {}",
                report.render()
            );
            let _ = fs::remove_dir_all(store.root());
        }
    }

    #[test]
    fn edited_artifacts_fail_the_digest_check() {
        let store = populated("digest");
        let latest = store.resolve("latest").unwrap();
        let path = store.run_dir(&latest.run_id).join("results.csv");
        fs::write(&path, "h\n2\n# tampered\n").unwrap();
        let report = check(&store);
        let kinds: Vec<IssueKind> = report.issues.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&IssueKind::DigestMismatch), "{}", report.render());
        assert!(kinds.contains(&IssueKind::CountMismatch), "{}", report.render());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn quarantine_restores_a_clean_store() {
        let store = populated("quarantine");
        inject(&store, Corruption::MissingResultsCsv).unwrap();
        let report = fsck(&store, true).unwrap();
        assert!(!report.clean());
        assert_eq!(report.quarantined.len(), 1);
        // The quarantined run's remains are preserved, not deleted.
        let short = report.quarantined[0].trim_start_matches("fex256:");
        assert!(store.root().join("quarantine").join(short).is_dir());
        // And a second pass finds nothing left to complain about.
        let after = check(&store);
        assert!(after.clean(), "{}", after.render());
        assert_eq!(after.entries_checked, 1, "the intact run survived");
        let _ = fs::remove_dir_all(store.root());
    }

    /// A populated store with a small artifact graph beside it: one node
    /// per kind layer, stored through the real graph API so index lines
    /// and payload digests are genuine.
    fn populated_with_graph(tag: &str) -> RunStore {
        use fex_container::Digest;
        let store = populated(tag);
        let mut g = graph::ArtifactGraph::open(store.root()).unwrap();
        g.store_node(graph::NodeKind::Source, &Digest(1), "{\"node\":\"source\"}\n").unwrap();
        g.store_node(graph::NodeKind::Compiled, &Digest(2), "{\"node\":\"compiled\"}\n").unwrap();
        g.store_node(graph::NodeKind::RunUnit, &Digest(3), "{\"node\":\"run\"}\n").unwrap();
        store
    }

    #[test]
    fn clean_graph_passes() {
        let store = populated_with_graph("graph-clean");
        let report = check(&store);
        assert!(report.clean(), "{}", report.render());
        assert_eq!(report.graph_nodes_checked, 3);
        assert!(report.render().contains("checked 3 graph nodes"));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn every_injected_graph_corruption_is_detected() {
        for corruption in GraphCorruption::ALL {
            let store = populated_with_graph(&format!("graph-inject-{corruption}"));
            inject_graph(&store, corruption).unwrap();
            let report = check(&store);
            assert!(!report.clean(), "{corruption} went undetected");
            let expected = match corruption {
                GraphCorruption::TruncatedGraphIndex => IssueKind::CorruptGraphIndexLine,
                GraphCorruption::GarbageGraphIndexLine => IssueKind::CorruptGraphIndexLine,
                GraphCorruption::MissingNodePayload => IssueKind::MissingGraphNode,
                GraphCorruption::EditedNodePayload => IssueKind::GraphDigestMismatch,
                GraphCorruption::OrphanNodeDir => IssueKind::OrphanGraphNode,
            };
            assert!(
                report.issues.iter().any(|i| i.kind == expected),
                "{corruption}: wanted {expected}, got {}",
                report.render()
            );
            let _ = fs::remove_dir_all(store.root());
        }
    }

    #[test]
    fn graph_quarantine_restores_a_clean_store() {
        for corruption in GraphCorruption::ALL {
            let store = populated_with_graph(&format!("graph-quarantine-{corruption}"));
            inject_graph(&store, corruption).unwrap();
            let report = fsck(&store, true).unwrap();
            assert!(!report.clean(), "{corruption}");
            let after = check(&store);
            assert!(after.clean(), "{corruption}: {}", after.render());
            // Graph damage must never quarantine run directories: the two
            // intact runs survive every graph corruption.
            assert_eq!(after.entries_checked, 2, "{corruption} touched the run store");
            let _ = fs::remove_dir_all(store.root());
        }
    }

    #[test]
    fn graph_quarantine_preserves_evidence() {
        let store = populated_with_graph("graph-evidence");
        inject_graph(&store, GraphCorruption::EditedNodePayload).unwrap();
        let report = fsck(&store, true).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        let short = report.quarantined[0].trim_start_matches("fex256:");
        let moved = store.root().join("quarantine").join(format!("graph-{short}"));
        assert!(moved.join("payload.json").is_file(), "edited payload kept as evidence");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn quarantine_sweeps_orphan_directories() {
        let store = populated("orphan");
        inject(&store, Corruption::TruncatedIndex).unwrap();
        let report = check(&store);
        // The torn entry's directory is now unreferenced.
        assert!(report.issues.iter().any(|i| i.kind == IssueKind::CorruptIndexLine));
        assert!(report.issues.iter().any(|i| i.kind == IssueKind::OrphanRunDir));
        let fixed = fsck(&store, true).unwrap();
        assert!(!fixed.quarantined.is_empty());
        assert!(check(&store).clean());
        let _ = fs::remove_dir_all(store.root());
    }
}
