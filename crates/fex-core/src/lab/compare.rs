//! The `fex compare` engine.
//!
//! Takes two collected result frames (from the [store](super::store) or
//! straight from CSV files), groups the chosen metric per
//! (benchmark, build type) cell, and runs Welch's t-test per cell. Each
//! cell gets a relative delta, a Cohen's d effect size and a four-way
//! [`Verdict`]; the whole comparison renders as an aligned verdict table
//! and as a grouped-bar plot with 95% CI whiskers. Lower metric values
//! are better (runtimes), so a significant *increase* is a regression.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::collect::{stats, DataFrame};
use crate::error::{FexError, Result};
use crate::plot::{Plot, PlotKind, Series};

/// Per-cell verdict of the regression gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Significantly lower metric in the candidate.
    Improved,
    /// Significantly higher metric in the candidate.
    Regressed,
    /// No statistically significant difference.
    Unchanged,
    /// Not enough samples to decide (and the means differ).
    Inconclusive,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Unchanged => "unchanged",
            Verdict::Inconclusive => "inconclusive",
        })
    }
}

/// Summary statistics of one side of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Sample count.
    pub n: usize,
    /// Sample mean (0 when empty).
    pub mean: f64,
    /// 95% CI half-width (0 below two samples).
    pub ci95: f64,
}

impl SampleStats {
    fn of(samples: &[f64]) -> Self {
        SampleStats {
            n: samples.len(),
            mean: stats::mean(samples),
            ci95: stats::ci95_half_width(samples),
        }
    }
}

/// One (benchmark, build type) cell of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CellComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Build type.
    pub build_type: String,
    /// Baseline-side statistics.
    pub baseline: SampleStats,
    /// Candidate-side statistics.
    pub candidate: SampleStats,
    /// Welch's t statistic (0 when undecidable).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub dof: f64,
    /// Relative delta of the means in percent (candidate vs baseline).
    pub delta_pct: f64,
    /// Cohen's d effect size (pooled standard deviation).
    pub effect_size: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// A full baseline-vs-candidate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Label of the baseline run (selector or path).
    pub baseline_label: String,
    /// Label of the candidate run.
    pub candidate_label: String,
    /// Compared metric column.
    pub metric: String,
    /// Per-cell results, in baseline first-appearance order (cells only
    /// the candidate has come last).
    pub cells: Vec<CellComparison>,
}

impl Comparison {
    /// Compares two collected frames on `metric`.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] when a frame lacks the `benchmark`, `type` or
    /// metric column, or when both frames are empty.
    pub fn compare(
        baseline: &DataFrame,
        candidate: &DataFrame,
        metric: &str,
        baseline_label: impl Into<String>,
        candidate_label: impl Into<String>,
    ) -> Result<Comparison> {
        let (base_order, base) = samples_by_cell(baseline, metric)?;
        let (cand_order, cand) = samples_by_cell(candidate, metric)?;
        if base.is_empty() && cand.is_empty() {
            return Err(FexError::Data("nothing to compare: both runs are empty".into()));
        }
        let mut order = base_order;
        for key in cand_order {
            if !order.contains(&key) {
                order.push(key);
            }
        }
        let empty: Vec<f64> = Vec::new();
        let cells = order
            .into_iter()
            .map(|key| {
                let a = base.get(&key).unwrap_or(&empty);
                let b = cand.get(&key).unwrap_or(&empty);
                compare_cell(key, a, b)
            })
            .collect();
        Ok(Comparison {
            baseline_label: baseline_label.into(),
            candidate_label: candidate_label.into(),
            metric: metric.to_string(),
            cells,
        })
    }

    /// True when any cell regressed — the gate's exit-status condition.
    pub fn has_regression(&self) -> bool {
        self.cells.iter().any(|c| c.verdict == Verdict::Regressed)
    }

    /// Count of cells with a given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.cells.iter().filter(|c| c.verdict == v).count()
    }

    /// The aligned verdict table.
    pub fn to_table(&self) -> String {
        let mut s = format!(
            "fex compare: `{}` (baseline) vs `{}` (candidate), metric `{}`\n\n",
            self.baseline_label, self.candidate_label, self.metric
        );
        let _ = writeln!(
            s,
            "{:<16} {:<14} {:>5} {:>12} {:>12} {:>8} {:>8} {:>7}  verdict",
            "benchmark", "type", "n", "base mean", "cand mean", "delta%", "t", "effect"
        );
        for c in &self.cells {
            let _ = writeln!(
                s,
                "{:<16} {:<14} {:>5} {:>12.6} {:>12.6} {:>+8.2} {:>8.2} {:>7.2}  {}",
                c.benchmark,
                c.build_type,
                format!("{}/{}", c.baseline.n, c.candidate.n),
                c.baseline.mean,
                c.candidate.mean,
                c.delta_pct,
                c.t,
                c.effect_size,
                c.verdict
            );
        }
        let _ = write!(
            s,
            "\n{} improved, {} regressed, {} unchanged, {} inconclusive\n",
            self.count(Verdict::Improved),
            self.count(Verdict::Regressed),
            self.count(Verdict::Unchanged),
            self.count(Verdict::Inconclusive)
        );
        s
    }

    /// The grouped-bar comparison plot with 95% CI whiskers.
    pub fn to_plot(&self) -> Plot {
        let mut plot = Plot::new(
            PlotKind::GroupedBarCi,
            format!("compare: {} vs {}", self.baseline_label, self.candidate_label),
        );
        plot.xlabel = "benchmark [build type]".into();
        plot.ylabel = self.metric.clone();
        plot.categories =
            self.cells.iter().map(|c| format!("{} [{}]", c.benchmark, c.build_type)).collect();
        let side = |pick: fn(&CellComparison) -> SampleStats, name: &str| {
            Series::bars_with_ci(
                name,
                self.cells.iter().map(|c| pick(c).mean).collect(),
                self.cells.iter().map(|c| pick(c).ci95).collect(),
            )
        };
        plot.series.push(side(|c| c.baseline, "baseline"));
        plot.series.push(side(|c| c.candidate, "candidate"));
        plot
    }
}

fn compare_cell(key: (String, String), a: &[f64], b: &[f64]) -> CellComparison {
    let (baseline, candidate) = (SampleStats::of(a), SampleStats::of(b));
    let delta_pct = if baseline.mean == 0.0 {
        if candidate.mean == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (candidate.mean - baseline.mean) / baseline.mean * 100.0
    };
    let w = stats::welch_t_test(b, a); // t > 0 ⇒ candidate larger (slower)
    let verdict = if a.is_empty() || b.is_empty() {
        Verdict::Inconclusive
    } else if a.len() < 2 || b.len() < 2 {
        // A single sample cannot carry a significance claim.
        if baseline.mean == candidate.mean {
            Verdict::Unchanged
        } else {
            Verdict::Inconclusive
        }
    } else if w.significant_05 && candidate.mean > baseline.mean {
        Verdict::Regressed
    } else if w.significant_05 && candidate.mean < baseline.mean {
        Verdict::Improved
    } else {
        Verdict::Unchanged
    };
    CellComparison {
        benchmark: key.0,
        build_type: key.1,
        baseline,
        candidate,
        t: w.t,
        dof: w.dof,
        delta_pct,
        effect_size: cohens_d(a, b),
        verdict,
    }
}

/// Cohen's d with pooled standard deviation; 0 for degenerate inputs
/// with equal means, ±∞ when the means differ at zero pooled variance.
fn cohens_d(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 || b.len() < 2 {
        return 0.0;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (ma, mb) = (stats::mean(a), stats::mean(b));
    let (sa, sb) = (stats::stddev(a), stats::stddev(b));
    let pooled = (((na - 1.0) * sa * sa + (nb - 1.0) * sb * sb) / (na + nb - 2.0)).sqrt();
    if pooled == 0.0 {
        if ma == mb {
            0.0
        } else {
            (mb - ma).signum() * f64::INFINITY
        }
    } else {
        (mb - ma) / pooled
    }
}

type CellSamples = (Vec<(String, String)>, BTreeMap<(String, String), Vec<f64>>);

fn samples_by_cell(df: &DataFrame, metric: &str) -> Result<CellSamples> {
    if df.is_empty() {
        return Ok((Vec::new(), BTreeMap::new()));
    }
    let bi = df.col("benchmark")?;
    let ti = df.col("type")?;
    let vi = df.col(metric)?;
    let mut order = Vec::new();
    let mut map: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    for r in df.iter() {
        let key = (r[bi].to_cell_string(), r[ti].to_cell_string());
        let v =
            r[vi].as_num().ok_or_else(|| FexError::Data(format!("non-numeric `{metric}` cell")))?;
        if !map.contains_key(&key) {
            order.push(key.clone());
        }
        map.entry(key).or_default().push(v);
    }
    Ok((order, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Value;

    fn frame(rows: &[(&str, &str, f64)]) -> DataFrame {
        let mut df = DataFrame::new(vec!["benchmark", "type", "time"]);
        for (b, t, v) in rows {
            df.push(vec![(*b).into(), (*t).into(), Value::Num(*v)]);
        }
        df
    }

    #[test]
    fn identical_runs_are_unchanged() {
        let base = frame(&[
            ("fft", "gcc", 1.0),
            ("fft", "gcc", 1.0),
            ("lu", "gcc", 2.0),
            ("lu", "gcc", 2.0),
        ]);
        let cmp = Comparison::compare(&base, &base.clone(), "time", "a", "b").unwrap();
        assert_eq!(cmp.cells.len(), 2);
        assert!(cmp.cells.iter().all(|c| c.verdict == Verdict::Unchanged));
        assert!(!cmp.has_regression());
        assert!(cmp.to_table().contains("2 unchanged"));
    }

    #[test]
    fn a_clear_slowdown_regresses() {
        let base = frame(&[("fft", "gcc", 1.00), ("fft", "gcc", 1.01), ("fft", "gcc", 0.99)]);
        let cand = frame(&[("fft", "gcc", 2.00), ("fft", "gcc", 2.01), ("fft", "gcc", 1.99)]);
        let cmp = Comparison::compare(&base, &cand, "time", "a", "b").unwrap();
        let c = &cmp.cells[0];
        assert_eq!(c.verdict, Verdict::Regressed);
        assert!(c.t > 0.0, "candidate-larger convention: t = {}", c.t);
        assert!((c.delta_pct - 100.0).abs() < 5.0, "delta {}", c.delta_pct);
        assert!(c.effect_size > 5.0, "effect {}", c.effect_size);
        assert!(cmp.has_regression());
        // The mirror image improves.
        let cmp = Comparison::compare(&cand, &base, "time", "a", "b").unwrap();
        assert_eq!(cmp.cells[0].verdict, Verdict::Improved);
        assert!(!cmp.has_regression());
    }

    #[test]
    fn missing_cells_and_single_samples_are_inconclusive() {
        let base = frame(&[("fft", "gcc", 1.0), ("lu", "gcc", 2.0)]);
        let cand = frame(&[("fft", "gcc", 1.5)]);
        let cmp = Comparison::compare(&base, &cand, "time", "a", "b").unwrap();
        let by_bench = |name: &str| cmp.cells.iter().find(|c| c.benchmark == name).unwrap();
        // fft: one sample per side, differing means → inconclusive.
        assert_eq!(by_bench("fft").verdict, Verdict::Inconclusive);
        // lu: candidate side missing entirely.
        assert_eq!(by_bench("lu").verdict, Verdict::Inconclusive);
        assert_eq!(by_bench("lu").candidate.n, 0);
        assert!(!cmp.has_regression());
        // But identical single samples are unchanged.
        let cmp = Comparison::compare(
            &frame(&[("fft", "gcc", 1.0)]),
            &frame(&[("fft", "gcc", 1.0)]),
            "time",
            "a",
            "b",
        )
        .unwrap();
        assert_eq!(cmp.cells[0].verdict, Verdict::Unchanged);
    }

    #[test]
    fn comparison_plot_pairs_bars_with_whiskers() {
        let base = frame(&[("fft", "gcc", 1.0), ("fft", "gcc", 3.0)]);
        let cand = frame(&[("fft", "gcc", 2.0), ("fft", "gcc", 2.0)]);
        let cmp = Comparison::compare(&base, &cand, "time", "base", "cand").unwrap();
        let plot = cmp.to_plot();
        assert_eq!(plot.kind, PlotKind::GroupedBarCi);
        assert_eq!(plot.categories, vec!["fft [gcc]"]);
        assert_eq!(plot.series.len(), 2);
        assert_eq!(plot.series[0].values, vec![2.0]);
        let w = plot.series[0].whiskers.as_ref().unwrap();
        assert!(w[0] > 0.0, "baseline spread gives a whisker");
        assert_eq!(plot.series[1].whiskers.as_ref().unwrap(), &vec![0.0]);
        assert!(plot.to_ascii().contains('±'));
    }

    #[test]
    fn empty_inputs_and_bad_columns_error() {
        let empty = DataFrame::new(vec!["benchmark", "type", "time"]);
        assert!(Comparison::compare(&empty, &empty.clone(), "time", "a", "b").is_err());
        let base = frame(&[("fft", "gcc", 1.0)]);
        assert!(Comparison::compare(&base, &base.clone(), "no_such", "a", "b").is_err());
    }
}
