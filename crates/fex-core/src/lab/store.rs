//! The on-disk run store.
//!
//! Layout (everything under the store root, default `.fex-lab/`):
//!
//! ```text
//! .fex-lab/
//!   index.json                 # one flat JSON object per line, append-only
//!   runs/<digest>/results.csv  # the collected frame
//!   runs/<digest>/failures.csv # the failure report
//!   runs/<digest>/metrics.json # journal metrics roll-up (when journaled)
//!   runs/<digest>/record.json  # the index line again, self-describing
//! ```
//!
//! Runs are **content addressed**: the run id is a digest over the
//! experiment key (name, build matrix, benchmark filter, thread sweep,
//! repetition policy, input, seed, tool, debug) *and* the result bytes, so
//! re-running a deterministic configuration produces the same id. The
//! index is append-only with a monotonic `seq` per line — no wall-clock
//! timestamps, so stored artifacts stay byte-reproducible. Duplicate run
//! ids are allowed (two identical runs are two index lines), which is
//! exactly what a "compare the same commit twice, expect unchanged" CI
//! smoke test needs.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use fex_container::DigestBuilder;

use crate::config::ExperimentConfig;
use crate::error::{FexError, Result};
use crate::journal::{self, Json, JsonLine};

/// Artifacts of one completed experiment, borrowed from the workflow.
#[derive(Debug, Clone, Copy)]
pub struct RunArtifacts<'a> {
    /// The results frame as CSV.
    pub results_csv: &'a str,
    /// The failure report as CSV (header-only when clean).
    pub failures_csv: &'a str,
    /// The journal metrics roll-up, when journaling was on.
    pub metrics_json: Option<&'a str>,
    /// Digest of the journal stream, when journaling was on.
    pub journal_digest: Option<&'a str>,
}

/// One line of the store index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Monotonic sequence number (insertion order).
    pub seq: u64,
    /// Content-addressed run id (`fex256:…`).
    pub run_id: String,
    /// Experiment name.
    pub experiment: String,
    /// Human-readable experiment key (the digested configuration axes).
    pub key: String,
    /// Rows in the stored results CSV.
    pub rows: usize,
    /// Records in the stored failure report.
    pub failures: usize,
}

impl IndexEntry {
    pub(crate) fn to_json(&self) -> String {
        let mut w = JsonLine::object("run_id", &self.run_id);
        w.num("seq", self.seq as i64)
            .str("experiment", &self.experiment)
            .str("key", &self.key)
            .num("rows", self.rows as i64)
            .num("failures", self.failures as i64);
        w.finish()
    }

    pub(crate) fn parse(line: &str) -> Result<IndexEntry> {
        let bad = |i: journal::ParseIssue| FexError::Data(format!("corrupt store index: {i}"));
        let map = journal::parse_flat_object(line).map_err(bad)?;
        let get = |k| journal::get_str(&map, k).map(str::to_string).map_err(bad);
        Ok(IndexEntry {
            seq: journal::get_u64(&map, "seq").map_err(bad)?,
            run_id: get("run_id")?,
            experiment: get("experiment")?,
            key: get("key")?,
            rows: journal::get_u64(&map, "rows").map_err(bad)? as usize,
            failures: journal::get_u64(&map, "failures").map_err(bad)? as usize,
        })
    }
}

/// The content-addressed archive of completed experiments.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

impl RunStore {
    /// Default store directory, relative to the working directory.
    pub const DEFAULT_DIR: &'static str = ".fex-lab";

    /// Opens (creating if necessary) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let root = dir.into();
        fs::create_dir_all(root.join("runs")).map_err(|e| {
            FexError::Data(format!("cannot create store at `{}`: {e}", root.display()))
        })?;
        Ok(RunStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The human-readable experiment key digested into the run id.
    pub fn experiment_key(config: &ExperimentConfig) -> String {
        let mut key = String::new();
        let _ = write!(
            key,
            "{} types={:?} bench={} threads={:?} reps={:?} input={:?} seed={} tool={:?} debug={}",
            config.name,
            config.build_types,
            config.benchmark.as_deref().unwrap_or("*"),
            config.threads,
            config.repetitions,
            config.input,
            config.seed,
            config.tool,
            config.debug,
        );
        key
    }

    /// The content-addressed run id of a configuration + its results.
    pub fn run_id(config: &ExperimentConfig, art: &RunArtifacts<'_>) -> String {
        Self::run_id_from_parts(&Self::experiment_key(config), art.results_csv, art.failures_csv)
    }

    /// The run id recomputed from its stored parts: the experiment key
    /// (as archived in the index) and the artifact bytes. `fex lab fsck`
    /// uses this to detect silently-edited artifacts.
    pub fn run_id_from_parts(key: &str, results_csv: &str, failures_csv: &str) -> String {
        let mut d = DigestBuilder::new();
        d.update_str(key).update_str(results_csv).update_str(failures_csv);
        d.finish().to_string()
    }

    /// Archives one completed run: writes its artifact directory and
    /// appends an index line. Returns the new entry.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] on filesystem failures or a corrupt index.
    pub fn save(&self, config: &ExperimentConfig, art: &RunArtifacts<'_>) -> Result<IndexEntry> {
        let run_id = Self::run_id(config, art);
        let entry = IndexEntry {
            seq: self.next_seq()?,
            run_id: run_id.clone(),
            experiment: config.name.clone(),
            key: Self::experiment_key(config),
            rows: art.results_csv.lines().count().saturating_sub(1),
            failures: art.failures_csv.lines().count().saturating_sub(1),
        };
        let dir = self.run_dir(&run_id);
        let io = |e: std::io::Error| FexError::Data(format!("store write failed: {e}"));
        fs::create_dir_all(&dir).map_err(io)?;
        fs::write(dir.join("results.csv"), art.results_csv).map_err(io)?;
        fs::write(dir.join("failures.csv"), art.failures_csv).map_err(io)?;
        if let Some(m) = art.metrics_json {
            fs::write(dir.join("metrics.json"), m).map_err(io)?;
        }
        let mut record = JsonLine::object("run_id", &run_id);
        record
            .num("seq", entry.seq as i64)
            .str("experiment", &entry.experiment)
            .str("key", &entry.key)
            .num("rows", entry.rows as i64)
            .num("failures", entry.failures as i64)
            .str("journal_digest", art.journal_digest.unwrap_or(""));
        fs::write(dir.join("record.json"), record.finish() + "\n").map_err(io)?;
        let mut index = fs::read_to_string(self.index_path()).unwrap_or_default();
        if !index.is_empty() && !index.ends_with('\n') {
            // A previous append was torn mid-line (crash); seal the torn
            // fragment onto its own line so the new entry stays parseable.
            index.push('\n');
        }
        index.push_str(&entry.to_json());
        index.push('\n');
        fs::write(self.index_path(), index).map_err(io)?;
        Ok(entry)
    }

    /// All index entries in insertion order.
    ///
    /// Corrupt lines are skipped (see [`RunStore::scan`]); an interrupted
    /// append — a truncated or garbage trailing line — must not take the
    /// whole store down with it.
    ///
    /// # Errors
    ///
    /// Kept for API stability; the skip-and-warn reader never fails.
    pub fn list(&self) -> Result<Vec<IndexEntry>> {
        Ok(self.scan().0)
    }

    /// Reads the index with per-line fault isolation: every parseable
    /// entry, plus one warning per skipped line — the same discipline as
    /// the journal reader. A store whose last append was torn by a crash
    /// stays listable, resolvable and appendable.
    pub fn scan(&self) -> (Vec<IndexEntry>, Vec<String>) {
        let Ok(text) = fs::read_to_string(self.index_path()) else {
            return (Vec::new(), Vec::new());
        };
        let mut entries = Vec::new();
        let mut warnings = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match IndexEntry::parse(line) {
                Ok(e) => entries.push(e),
                Err(e) => warnings.push(format!("skipping index line {}: {e}", i + 1)),
            }
        }
        (entries, warnings)
    }

    /// Resolves a selector to an index entry: `latest` (newest entry),
    /// `prev` (second newest), or a unique `run_id` prefix (with or
    /// without the `fex256:` prefix).
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] when the store is empty, nothing matches, or a
    /// prefix is ambiguous.
    pub fn resolve(&self, selector: &str) -> Result<IndexEntry> {
        let entries = self.list()?;
        if entries.is_empty() {
            return Err(FexError::Data(format!(
                "store `{}` is empty; run with --lab first",
                self.root.display()
            )));
        }
        match selector {
            "latest" => Ok(entries[entries.len() - 1].clone()),
            "prev" => entries
                .len()
                .checked_sub(2)
                .map(|i| entries[i].clone())
                .ok_or_else(|| FexError::Data("store has only one run; no `prev`".into())),
            prefix => {
                let wanted = prefix.trim_start_matches("fex256:");
                let mut matches: Vec<&IndexEntry> = entries
                    .iter()
                    .filter(|e| e.run_id.trim_start_matches("fex256:").starts_with(wanted))
                    .collect();
                // The same run id may be stored several times; those are
                // interchangeable, so keep the newest.
                matches.dedup_by(|a, b| a.run_id == b.run_id);
                match matches[..] {
                    [] => Err(FexError::Data(format!("no stored run matches `{selector}`"))),
                    [one] => Ok(one.clone()),
                    _ => Err(FexError::Data(format!(
                        "run id prefix `{selector}` is ambiguous ({} matches)",
                        matches.len()
                    ))),
                }
            }
        }
    }

    /// Reads the stored results CSV of an entry.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] naming the corrupt run when the artifact is
    /// missing or unreadable (`fex lab fsck` finds and quarantines such
    /// runs).
    pub fn results_csv(&self, entry: &IndexEntry) -> Result<String> {
        let path = self.run_dir(&entry.run_id).join("results.csv");
        fs::read_to_string(&path).map_err(|e| {
            FexError::Data(format!(
                "run {} is corrupt: cannot read `{}`: {e}; try `fex lab fsck`",
                entry.run_id,
                path.display()
            ))
        })
    }

    /// Garbage-collects the store: per experiment key, keeps the newest
    /// `keep` entries and deletes the rest (index lines and, when no
    /// surviving entry references them, artifact directories). Returns
    /// the number of index entries removed.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] on filesystem failures or a corrupt index.
    pub fn gc(&self, keep: usize) -> Result<usize> {
        let entries = self.list()?;
        let mut kept: Vec<&IndexEntry> = Vec::new();
        // Walk newest-first so "the newest `keep` per key" is a simple
        // counter; then restore insertion order.
        let mut seen: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for e in entries.iter().rev() {
            let n = seen.entry(e.key.as_str()).or_insert(0);
            if *n < keep {
                kept.push(e);
                *n += 1;
            }
        }
        kept.reverse();
        let removed = entries.len() - kept.len();
        let live: std::collections::BTreeSet<&str> =
            kept.iter().map(|e| e.run_id.as_str()).collect();
        for e in &entries {
            if !live.contains(e.run_id.as_str()) {
                let _ = fs::remove_dir_all(self.run_dir(&e.run_id));
            }
        }
        let index: String = kept.iter().map(|e| e.to_json() + "\n").collect();
        fs::write(self.index_path(), index)
            .map_err(|e| FexError::Data(format!("store write failed: {e}")))?;
        Ok(removed)
    }

    /// Renders `fex lab list` output. The `repro` column is the
    /// [`ReproScore`](crate::diag::ReproScore) — readiness + outcome out
    /// of 100 — so stored runs rank by reproducibility health.
    pub fn render_list(&self, entries: &[IndexEntry]) -> String {
        if entries.is_empty() {
            return "(store is empty)\n".to_string();
        }
        let mut s = format!(
            "{:<5} {:<40} {:<12} {:>6} {:>9} {:>8}\n",
            "seq", "run id", "experiment", "rows", "failures", "repro"
        );
        for e in entries {
            let score = crate::diag::repro_score(self, e);
            let _ = writeln!(
                s,
                "{:<5} {:<40} {:<12} {:>6} {:>9} {:>8}",
                e.seq,
                e.run_id,
                e.experiment,
                e.rows,
                e.failures,
                score.render()
            );
        }
        s
    }

    /// Renders `fex lab list --json`: one flat-JSON object per line with
    /// the table's fields plus the split repro score, so CI scripts can
    /// consume the store without screen-scraping.
    pub fn render_list_json(&self, entries: &[IndexEntry]) -> String {
        let mut s = String::new();
        for e in entries {
            let score = crate::diag::repro_score(self, e);
            let mut w = JsonLine::object("run_id", &e.run_id);
            w.num("seq", e.seq as i64)
                .str("experiment", &e.experiment)
                .str("key", &e.key)
                .num("rows", e.rows as i64)
                .num("failures", e.failures as i64)
                .num("repro", score.total() as i64)
                .num("readiness", score.readiness as i64)
                .num("outcome", score.outcome as i64);
            s.push_str(&w.finish());
            s.push('\n');
        }
        s
    }

    /// Renders `fex lab show <selector>` output.
    pub fn render_show(&self, entry: &IndexEntry) -> Result<String> {
        let mut s = String::new();
        let _ = writeln!(s, "run id:     {}", entry.run_id);
        let _ = writeln!(s, "seq:        {}", entry.seq);
        let _ = writeln!(s, "experiment: {}", entry.experiment);
        let _ = writeln!(s, "key:        {}", entry.key);
        let _ = writeln!(s, "rows:       {}", entry.rows);
        let _ = writeln!(s, "failures:   {}", entry.failures);
        let record = self.run_dir(&entry.run_id).join("record.json");
        if let Ok(text) = fs::read_to_string(&record) {
            if let Ok(map) = journal::parse_flat_object(text.trim()) {
                if let Some(Json::Str(d)) = map.get("journal_digest") {
                    if !d.is_empty() {
                        let _ = writeln!(s, "journal:    {d}");
                    }
                }
            }
        }
        Ok(s)
    }

    pub(crate) fn index_path(&self) -> PathBuf {
        self.root.join("index.json")
    }

    pub(crate) fn run_dir(&self, run_id: &str) -> PathBuf {
        self.root.join("runs").join(run_id.trim_start_matches("fex256:"))
    }

    pub(crate) fn next_seq(&self) -> Result<u64> {
        Ok(self.list()?.iter().map(|e| e.seq).max().map_or(0, |m| m + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fex_suites::InputSize;

    fn temp_store(tag: &str) -> RunStore {
        let dir = std::env::temp_dir().join(format!("fex-lab-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    fn art(results: &'static str) -> RunArtifacts<'static> {
        RunArtifacts {
            results_csv: results,
            failures_csv: "benchmark,type,threads,rep,error,attempts,outcome\n",
            metrics_json: Some("{}"),
            journal_digest: Some("fex256:00000000000000000000000000000abc"),
        }
    }

    #[test]
    fn save_list_resolve_roundtrip() {
        let store = temp_store("roundtrip");
        let cfg = ExperimentConfig::new("micro").input(InputSize::Test);
        let a = store.save(&cfg, &art("h\n1\n2\n")).unwrap();
        let b = store.save(&cfg.clone().seed(43), &art("h\n3\n")).unwrap();
        assert_eq!((a.seq, b.seq), (0, 1));
        assert_ne!(a.run_id, b.run_id, "different seeds, different ids");
        assert_eq!(a.rows, 2);

        let entries = store.list().unwrap();
        assert_eq!(entries, vec![a.clone(), b.clone()]);
        assert_eq!(store.resolve("latest").unwrap(), b);
        assert_eq!(store.resolve("prev").unwrap(), a);
        assert_eq!(store.resolve(&a.run_id).unwrap(), a);
        let prefix = &a.run_id.trim_start_matches("fex256:")[..12];
        assert_eq!(store.resolve(prefix).unwrap(), a);
        assert!(store.resolve("zzzz").is_err());
        assert_eq!(store.results_csv(&a).unwrap(), "h\n1\n2\n");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn identical_runs_share_an_id_but_not_an_index_line() {
        let store = temp_store("dup");
        let cfg = ExperimentConfig::new("micro").input(InputSize::Test);
        let a = store.save(&cfg, &art("h\n1\n")).unwrap();
        let b = store.save(&cfg, &art("h\n1\n")).unwrap();
        assert_eq!(a.run_id, b.run_id);
        assert_eq!(store.list().unwrap().len(), 2);
        // A shared id resolves to the duplicate, not an ambiguity error.
        assert_eq!(store.resolve(&a.run_id).unwrap().run_id, a.run_id);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_keeps_the_newest_per_key() {
        let store = temp_store("gc");
        let cfg = ExperimentConfig::new("micro").input(InputSize::Test);
        store.save(&cfg, &art("h\n1\n")).unwrap();
        store.save(&cfg, &art("h\n2\n")).unwrap();
        let other = store.save(&cfg.clone().seed(99), &art("h\n3\n")).unwrap();
        let removed = store.gc(1).unwrap();
        assert_eq!(removed, 1, "one of the two same-key entries goes");
        let left = store.list().unwrap();
        assert_eq!(left.len(), 2);
        assert!(left.iter().any(|e| e.run_id == other.run_id));
        // Survivors keep their artifacts readable.
        for e in &left {
            assert!(store.results_csv(e).is_ok());
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn truncated_trailing_index_line_is_skipped_with_a_warning() {
        let store = temp_store("truncated");
        let cfg = ExperimentConfig::new("micro").input(InputSize::Test);
        let a = store.save(&cfg, &art("h\n1\n")).unwrap();
        let b = store.save(&cfg.clone().seed(99), &art("h\n2\n")).unwrap();

        // Tear the last append mid-byte, as a crash during `save` would.
        let index = fs::read_to_string(store.index_path()).unwrap();
        fs::write(store.index_path(), &index[..index.len() - 9]).unwrap();

        let (entries, warnings) = store.scan();
        assert_eq!(entries, vec![a.clone()], "the intact entry survives");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("index line 2"), "{warnings:?}");

        // Every reader path stays functional on the torn store.
        assert_eq!(store.list().unwrap(), vec![a.clone()]);
        assert_eq!(store.resolve("latest").unwrap(), a);
        assert_eq!(store.next_seq().unwrap(), b.seq, "torn seq is reusable");
        let c = store.save(&cfg.clone().seed(7), &art("h\n3\n")).unwrap();
        assert_eq!(store.list().unwrap(), vec![a, c], "appends still work");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn garbage_index_lines_do_not_poison_the_store() {
        let store = temp_store("garbage");
        let cfg = ExperimentConfig::new("micro").input(InputSize::Test);
        let a = store.save(&cfg, &art("h\n1\n")).unwrap();
        let mut index = fs::read_to_string(store.index_path()).unwrap();
        index.push_str("{\"run_id\": 12, not json at all\n");
        index.push('\n'); // blank lines are fine, not warnings
        fs::write(store.index_path(), index).unwrap();
        let (entries, warnings) = store.scan();
        assert_eq!(entries, vec![a]);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn missing_artifact_error_names_the_run() {
        let store = temp_store("missing-artifact");
        let cfg = ExperimentConfig::new("micro").input(InputSize::Test);
        let a = store.save(&cfg, &art("h\n1\n")).unwrap();
        fs::remove_file(store.run_dir(&a.run_id).join("results.csv")).unwrap();
        let err = store.results_csv(&a).unwrap_err().to_string();
        assert!(err.contains(&a.run_id), "{err}");
        assert!(err.contains("fsck"), "{err}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn empty_store_reports_clearly() {
        let store = temp_store("empty");
        assert!(store.list().unwrap().is_empty());
        let err = store.resolve("latest").unwrap_err().to_string();
        assert!(err.contains("empty"), "{err}");
        assert!(store.render_list(&[]).contains("empty"));
        let _ = fs::remove_dir_all(store.root());
    }
}
