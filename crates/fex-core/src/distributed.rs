//! Distributed experiments — the paper's §VI future-work item ("FEX
//! supports only single-machine experiments. We are investigating ways to
//! build distributed experiments, e.g., using the Fabric library").
//!
//! In this reproduction a *host* is a simulated machine configuration
//! (core count, clock, cache geometry — heterogeneous clusters are the
//! interesting case). A [`DistributedRun`] partitions a suite's
//! benchmarks across hosts round-robin (Fabric-style fan-out), executes
//! each partition under its host's machine, and merges the collected
//! frames with a `host` column, so cross-host comparisons use the same
//! collect/plot pipeline as everything else.

use fex_suites::{InputSize, Suite};
use fex_vm::{Machine, MachineConfig, Measurement};

use crate::build::BuildSystem;
use crate::collect::DataFrame;
use crate::config::{input_name, ExperimentConfig};
use crate::error::{FexError, Result};

/// One simulated host in the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Host name (becomes the `host` column value).
    pub name: String,
    /// Cores available to `parfor`.
    pub cores: usize,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
}

impl HostSpec {
    /// Creates a host.
    pub fn new(name: impl Into<String>, cores: usize, freq_hz: f64) -> Self {
        HostSpec { name: name.into(), cores: cores.max(1), freq_hz }
    }

    fn machine_config(&self, seed: u64) -> MachineConfig {
        MachineConfig {
            cores: self.cores,
            freq_hz: self.freq_hz,
            seed,
            ..MachineConfig::default()
        }
    }
}

/// A distributed experiment over one suite.
#[derive(Debug)]
pub struct DistributedRun {
    suite: Suite,
    hosts: Vec<HostSpec>,
}

impl DistributedRun {
    /// Creates a distributed run.
    ///
    /// # Errors
    ///
    /// [`FexError::Config`] when no hosts are given or the suite is
    /// proprietary.
    pub fn new(suite: Suite, hosts: Vec<HostSpec>) -> Result<Self> {
        if hosts.is_empty() {
            return Err(FexError::Config("a distributed run needs at least one host".into()));
        }
        if suite.proprietary {
            return Err(FexError::Config(format!(
                "suite `{}` is proprietary and cannot be distributed",
                suite.name
            )));
        }
        Ok(DistributedRun { suite, hosts })
    }

    /// The benchmark partition for each host (round-robin).
    pub fn partition(&self) -> Vec<(&HostSpec, Vec<&'static str>)> {
        let mut parts: Vec<(&HostSpec, Vec<&'static str>)> =
            self.hosts.iter().map(|h| (h, Vec::new())).collect();
        for (i, prog) in self.suite.programs.iter().enumerate() {
            parts[i % self.hosts.len()].1.push(prog.name);
        }
        parts
    }

    /// Executes the distributed experiment: each host builds (locally,
    /// with the same pinned toolchain — reproducibility is preserved by
    /// construction) and runs its partition.
    ///
    /// # Errors
    ///
    /// Build and run failures, annotated with the benchmark name.
    pub fn execute(
        &self,
        build: &mut BuildSystem,
        config: &ExperimentConfig,
    ) -> Result<DataFrame> {
        config.validate()?;
        let mut columns = vec![
            "host".to_string(),
            "suite".to_string(),
            "benchmark".to_string(),
            "type".to_string(),
            "input".to_string(),
            "rep".to_string(),
            "time".to_string(),
            "cycles".to_string(),
        ];
        // Keep the frame shape stable regardless of tool.
        columns.dedup();
        let mut df = DataFrame::new(columns);
        for (host, benches) in self.partition() {
            for ty in &config.build_types {
                for bench in &benches {
                    let prog = self
                        .suite
                        .program(bench)
                        .ok_or_else(|| FexError::UnknownName { kind: "benchmark", name: bench.to_string() })?;
                    let artifact =
                        build.build(bench, prog.source, ty, config.debug, config.no_build)?;
                    for rep in 0..config.repetitions {
                        let machine = Machine::new(host.machine_config(config.seed));
                        let run = machine
                            .load(&artifact.program)
                            .run_entry(prog.args(effective_input(config)))
                            .map_err(|source| FexError::Run {
                                benchmark: bench.to_string(),
                                source,
                            })?;
                        let m = Measurement::extract(config.tool, &run);
                        df.push(vec![
                            host.name.as_str().into(),
                            self.suite.name.into(),
                            (*bench).into(),
                            ty.as_str().into(),
                            input_name(effective_input(config)).into(),
                            (rep as i64).into(),
                            m.get("time").unwrap_or(run.wall_seconds).into(),
                            (run.elapsed_cycles as i64).into(),
                        ]);
                    }
                }
            }
        }
        Ok(df)
    }
}

fn effective_input(config: &ExperimentConfig) -> InputSize {
    config.input
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::MakefileSet;

    fn hosts() -> Vec<HostSpec> {
        vec![
            HostSpec::new("node-a", 4, 3.0e9),
            HostSpec::new("node-b", 2, 2.0e9),
        ]
    }

    #[test]
    fn partition_is_round_robin_and_total() {
        let run = DistributedRun::new(fex_suites::micro(), hosts()).unwrap();
        let parts = run.partition();
        let total: usize = parts.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 4);
        assert_eq!(parts[0].1, vec!["arrayread", "ptrchase"]);
        assert_eq!(parts[1].1, vec!["arraywrite", "branches"]);
    }

    #[test]
    fn executes_across_heterogeneous_hosts() {
        let run = DistributedRun::new(fex_suites::micro(), hosts()).unwrap();
        let mut build = BuildSystem::new(MakefileSet::standard());
        let config = ExperimentConfig::new("micro")
            .types(vec!["gcc_native"])
            .input(InputSize::Test)
            .repetitions(2);
        let df = run.execute(&mut build, &config).unwrap();
        // 4 benchmarks × 1 type × 2 reps.
        assert_eq!(df.len(), 8);
        assert_eq!(df.distinct("host").unwrap(), vec!["node-a", "node-b"]);
        // The slower-clocked host reports proportionally larger times for
        // identical cycle counts.
        let t = |host: &str, bench: &str| -> (f64, f64) {
            let sub = df
                .filter_eq("host", host)
                .unwrap()
                .filter_eq("benchmark", bench)
                .unwrap();
            let row = sub.iter().next().unwrap().to_vec();
            (row[6].as_num().unwrap(), row[7].as_num().unwrap())
        };
        let (ta, ca) = t("node-a", "arrayread");
        assert!((ta - ca / 3.0e9).abs() / ta < 1e-9, "time must be cycles/freq");
        let (tb, cb) = t("node-b", "arraywrite");
        assert!((tb - cb / 2.0e9).abs() / tb < 1e-9);
    }

    #[test]
    fn invalid_cluster_configs_are_rejected() {
        assert!(DistributedRun::new(fex_suites::micro(), vec![]).is_err());
        assert!(DistributedRun::new(fex_suites::spec_cpu2006(), hosts()).is_err());
    }
}
