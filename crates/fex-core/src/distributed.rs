//! Distributed experiments — the paper's §VI future-work item ("FEX
//! supports only single-machine experiments. We are investigating ways to
//! build distributed experiments, e.g., using the Fabric library").
//!
//! In this reproduction a *host* is a simulated machine configuration
//! (core count, clock, cache geometry — heterogeneous clusters are the
//! interesting case). A [`DistributedRun`] partitions a suite's
//! benchmarks across hosts round-robin (Fabric-style fan-out), executes
//! each partition under its host's machine, and merges the collected
//! frames with a `host` column, so cross-host comparisons use the same
//! collect/plot pipeline as everything else.
//!
//! Host failures can be injected with [`DistributedRun::kill_host`]: a
//! dead host's partition is re-distributed round-robin across the
//! survivors before execution, and the merged frame marks those runs in
//! its `rescheduled` column so the re-distribution is auditable.

use fex_suites::{InputSize, Suite};
use fex_vm::{Machine, MachineConfig, Measurement};

use crate::build::BuildSystem;
use crate::collect::DataFrame;
use crate::config::{input_name, ExperimentConfig};
use crate::error::{FexError, Result};

/// One simulated host in the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Host name (becomes the `host` column value).
    pub name: String,
    /// Cores available to `parfor`.
    pub cores: usize,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
}

impl HostSpec {
    /// Creates a host.
    pub fn new(name: impl Into<String>, cores: usize, freq_hz: f64) -> Self {
        HostSpec { name: name.into(), cores: cores.max(1), freq_hz }
    }

    fn machine_config(&self, seed: u64) -> MachineConfig {
        MachineConfig { cores: self.cores, freq_hz: self.freq_hz, seed, ..MachineConfig::default() }
    }
}

/// A host's share of the work: each benchmark is flagged with whether it
/// was rescheduled off a dead host.
pub type HostPartition<'a> = (&'a HostSpec, Vec<(&'static str, bool)>);

/// A distributed experiment over one suite.
#[derive(Debug)]
pub struct DistributedRun {
    suite: Suite,
    hosts: Vec<HostSpec>,
    dead: Vec<String>,
}

impl DistributedRun {
    /// Creates a distributed run.
    ///
    /// # Errors
    ///
    /// [`FexError::Config`] when no hosts are given or the suite is
    /// proprietary.
    pub fn new(suite: Suite, hosts: Vec<HostSpec>) -> Result<Self> {
        if hosts.is_empty() {
            return Err(FexError::Config("a distributed run needs at least one host".into()));
        }
        if suite.proprietary {
            return Err(FexError::Config(format!(
                "suite `{}` is proprietary and cannot be distributed",
                suite.name
            )));
        }
        Ok(DistributedRun { suite, hosts, dead: Vec::new() })
    }

    /// Injects a host failure: `name` is considered dead and its
    /// partition is re-distributed to the surviving hosts. Unknown names
    /// are ignored (a host that never existed cannot fail).
    pub fn kill_host(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if self.hosts.iter().any(|h| h.name == name) && !self.dead.contains(&name) {
            self.dead.push(name);
        }
        self
    }

    /// Hosts marked as failed.
    pub fn dead_hosts(&self) -> &[String] {
        &self.dead
    }

    fn is_dead(&self, name: &str) -> bool {
        self.dead.iter().any(|d| d == name)
    }

    /// The benchmark partition for each host (round-robin), ignoring
    /// host failures.
    pub fn partition(&self) -> Vec<(&HostSpec, Vec<&'static str>)> {
        let mut parts: Vec<(&HostSpec, Vec<&'static str>)> =
            self.hosts.iter().map(|h| (h, Vec::new())).collect();
        for (i, prog) in self.suite.programs.iter().enumerate() {
            parts[i % self.hosts.len()].1.push(prog.name);
        }
        parts
    }

    /// The partition actually executed: dead hosts' benchmarks are
    /// re-distributed round-robin across the survivors. Each benchmark
    /// carries a flag saying whether it was rescheduled off a dead host.
    ///
    /// # Errors
    ///
    /// [`FexError::Config`] when every host is dead.
    pub fn effective_partition(&self) -> Result<Vec<HostPartition<'_>>> {
        let mut survivors: Vec<HostPartition<'_>> =
            self.hosts.iter().filter(|h| !self.is_dead(&h.name)).map(|h| (h, Vec::new())).collect();
        if survivors.is_empty() {
            return Err(FexError::Config(
                "every host in the cluster has failed; nothing can execute".into(),
            ));
        }
        let mut orphans = Vec::new();
        for (host, benches) in self.partition() {
            if self.is_dead(&host.name) {
                orphans.extend(benches);
            } else if let Some(entry) = survivors.iter_mut().find(|(h, _)| h.name == host.name) {
                entry.1.extend(benches.into_iter().map(|b| (b, false)));
            }
        }
        let n = survivors.len();
        for (i, bench) in orphans.into_iter().enumerate() {
            survivors[i % n].1.push((bench, true));
        }
        Ok(survivors)
    }

    /// Executes the distributed experiment: each host builds (locally,
    /// with the same pinned toolchain — reproducibility is preserved by
    /// construction) and runs its partition.
    ///
    /// # Errors
    ///
    /// Build and run failures, annotated with the benchmark name.
    pub fn execute(&self, build: &mut BuildSystem, config: &ExperimentConfig) -> Result<DataFrame> {
        config.validate()?;
        let mut columns = vec![
            "host".to_string(),
            "suite".to_string(),
            "benchmark".to_string(),
            "type".to_string(),
            "input".to_string(),
            "rep".to_string(),
            "time".to_string(),
            "cycles".to_string(),
            // Appended last so positional consumers of the original
            // schema keep working.
            "rescheduled".to_string(),
        ];
        // Keep the frame shape stable regardless of tool.
        columns.dedup();
        let mut df = DataFrame::new(columns);
        for (host, benches) in self.effective_partition()? {
            for ty in &config.build_types {
                for (bench, rescheduled) in &benches {
                    let prog = self.suite.program(bench).ok_or_else(|| FexError::UnknownName {
                        kind: "benchmark",
                        name: bench.to_string(),
                    })?;
                    let artifact =
                        build.build(bench, prog.source, ty, config.debug, config.no_build)?;
                    // The distributed path has no adaptive controller:
                    // every host runs the policy's floor count (which is
                    // the exact count for `Fixed` policies).
                    for rep in 0..config.repetitions.min_reps() {
                        let machine = Machine::new(host.machine_config(config.seed));
                        let run = machine
                            .load(&artifact.program)
                            .run_entry(prog.args(effective_input(config)))
                            .map_err(|source| FexError::Run {
                                benchmark: bench.to_string(),
                                build_type: ty.to_string(),
                                source,
                            })?;
                        let m = Measurement::extract(config.tool, &run);
                        df.push(vec![
                            host.name.as_str().into(),
                            self.suite.name.into(),
                            (*bench).into(),
                            ty.as_str().into(),
                            input_name(effective_input(config)).into(),
                            (rep as i64).into(),
                            m.get("time").unwrap_or(run.wall_seconds).into(),
                            (run.elapsed_cycles as i64).into(),
                            (*rescheduled as i64).into(),
                        ]);
                    }
                }
            }
        }
        Ok(df)
    }
}

fn effective_input(config: &ExperimentConfig) -> InputSize {
    config.input
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::MakefileSet;

    fn hosts() -> Vec<HostSpec> {
        vec![HostSpec::new("node-a", 4, 3.0e9), HostSpec::new("node-b", 2, 2.0e9)]
    }

    #[test]
    fn partition_is_round_robin_and_total() {
        let run = DistributedRun::new(fex_suites::micro(), hosts()).unwrap();
        let parts = run.partition();
        let total: usize = parts.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 4);
        assert_eq!(parts[0].1, vec!["arrayread", "ptrchase"]);
        assert_eq!(parts[1].1, vec!["arraywrite", "branches"]);
    }

    #[test]
    fn executes_across_heterogeneous_hosts() {
        let run = DistributedRun::new(fex_suites::micro(), hosts()).unwrap();
        let mut build = BuildSystem::new(MakefileSet::standard());
        let config = ExperimentConfig::new("micro")
            .types(vec!["gcc_native"])
            .input(InputSize::Test)
            .repetitions(2);
        let df = run.execute(&mut build, &config).unwrap();
        // 4 benchmarks × 1 type × 2 reps.
        assert_eq!(df.len(), 8);
        assert_eq!(df.distinct("host").unwrap(), vec!["node-a", "node-b"]);
        // The slower-clocked host reports proportionally larger times for
        // identical cycle counts.
        let t = |host: &str, bench: &str| -> (f64, f64) {
            let sub = df.filter_eq("host", host).unwrap().filter_eq("benchmark", bench).unwrap();
            let row = sub.iter().next().unwrap().to_vec();
            (row[6].as_num().unwrap(), row[7].as_num().unwrap())
        };
        let (ta, ca) = t("node-a", "arrayread");
        assert!((ta - ca / 3.0e9).abs() / ta < 1e-9, "time must be cycles/freq");
        let (tb, cb) = t("node-b", "arraywrite");
        assert!((tb - cb / 2.0e9).abs() / tb < 1e-9);
    }

    #[test]
    fn invalid_cluster_configs_are_rejected() {
        assert!(DistributedRun::new(fex_suites::micro(), vec![]).is_err());
        assert!(DistributedRun::new(fex_suites::spec_cpu2006(), hosts()).is_err());
    }

    #[test]
    fn dead_host_work_is_redistributed_to_survivors() {
        let run = DistributedRun::new(fex_suites::micro(), hosts())
            .unwrap()
            .kill_host("node-b")
            .kill_host("node-b") // idempotent
            .kill_host("never-existed"); // ignored
        assert_eq!(run.dead_hosts(), &["node-b".to_string()]);

        let parts = run.effective_partition().unwrap();
        assert_eq!(parts.len(), 1, "only node-a survives");
        assert_eq!(parts[0].0.name, "node-a");
        // node-a keeps its own benches un-flagged and inherits node-b's
        // flagged as rescheduled.
        assert_eq!(
            parts[0].1,
            vec![
                ("arrayread", false),
                ("ptrchase", false),
                ("arraywrite", true),
                ("branches", true),
            ]
        );

        let mut build = BuildSystem::new(MakefileSet::standard());
        let config =
            ExperimentConfig::new("micro").types(vec!["gcc_native"]).input(InputSize::Test);
        let df = run.execute(&mut build, &config).unwrap();
        // No work is lost: all 4 benchmarks still execute.
        assert_eq!(df.len(), 4);
        assert_eq!(df.distinct("host").unwrap(), vec!["node-a"]);
        let ri = df.col("rescheduled").unwrap();
        let rescheduled: Vec<String> =
            df.iter().filter(|r| r[ri].as_num() == Some(1.0)).map(|r| r[2].to_string()).collect();
        assert_eq!(rescheduled, vec!["arraywrite", "branches"]);
    }

    #[test]
    fn a_fully_dead_cluster_cannot_execute() {
        let run = DistributedRun::new(fex_suites::micro(), hosts())
            .unwrap()
            .kill_host("node-a")
            .kill_host("node-b");
        assert!(matches!(run.effective_partition(), Err(FexError::Config(_))));
        let mut build = BuildSystem::new(MakefileSet::standard());
        let config = ExperimentConfig::new("micro").input(InputSize::Test);
        assert!(run.execute(&mut build, &config).is_err());
    }

    #[test]
    fn healthy_clusters_report_no_rescheduling() {
        let run = DistributedRun::new(fex_suites::micro(), hosts()).unwrap();
        let mut build = BuildSystem::new(MakefileSet::standard());
        let config =
            ExperimentConfig::new("micro").types(vec!["gcc_native"]).input(InputSize::Test);
        let df = run.execute(&mut build, &config).unwrap();
        let ri = df.col("rescheduled").unwrap();
        assert!(df.iter().all(|r| r[ri].as_num() == Some(0.0)));
    }
}
