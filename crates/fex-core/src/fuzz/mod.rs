//! `fex fuzz` — seeded scenario fuzzing with an invariant oracle.
//!
//! The framework's trustworthiness rests on a handful of *golden-free*
//! invariants: performance toggles and scheduler width must never change
//! measured bytes, the journal roll-up must agree with the CSVs, and the
//! result store must round-trip losslessly. This module generates
//! random-but-valid experiments ([`gen`]) — every generated program
//! parses, compiles under every build type and terminates inside an
//! instruction budget by construction — pushes each through the **real**
//! build→run→collect→store pipeline ([`crate::workflow::Fex::run_suite`]),
//! and checks the oracle registry:
//!
//! | oracle     | invariant                                                       |
//! |------------|-----------------------------------------------------------------|
//! | `toggles`  | `--no-fusion --no-mru --no-decode-cache` → byte-identical CSVs  |
//! | `jobs`     | `--jobs N` vs `--jobs 1` → identical CSVs and journal streams   |
//! | `metrics`  | journal roll-up jobs-invariant and consistent with CSV totals   |
//! | `store`    | write→read lossless, identical reruns share a run id, no false  |
//! |            | regression from the compare gate                                |
//! | `warm`     | a rerun against the populated artifact graph is byte-identical  |
//! |            | to cold (CSVs + normalized journal), as is a dirty rerun after  |
//! |            | a semantically neutral source edit                              |
//! | `recovery` | every injected disk corruption is detected by `fex lab fsck`    |
//! |            | and quarantine restores a clean store                           |
//! | `diag`     | the journal re-parses under the diagnostics reader with zero    |
//! |            | journal-integrity findings (`fex diag` never flags a journal    |
//! |            | the real pipeline wrote)                                        |
//! | `serve`    | the scenario submitted through an in-process `fex serve` daemon |
//! |            | matches the direct pipeline output byte-for-byte, and an        |
//! |            | identical cross-tenant resubmission is 100% cache-served        |
//!
//! A failing case is **shrunk** — programs, build types, statement
//! blocks, helper functions, faults and repetition policies are greedily
//! dropped while the failure reproduces — and the minimal scenario is
//! written as a repro bundle (`repro.txt` + `.cmm` sources). Committed
//! regressions live in `tests/fuzz_regressions.txt` as `<seed> <case>`
//! lines and are replayed by tier-1 tests.
//!
//! The `FEX_FUZZ_BREAK` environment variable ([`BreakMode`]) arms a
//! test-only, driver-level mutation that deliberately violates one
//! invariant — proving end to end that the oracles *can* fail and that
//! the shrinker converges. The measurement path itself is never touched.

pub mod gen;

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::collect::DataFrame;
use crate::config::Repetitions;
use crate::error::{FexError, Result};
use crate::journal::{self, JournalEvent, Metrics};
use crate::lab::{fsck, Comparison, RunStore};
use crate::workflow::Fex;
use fex_vm::PassMask;

pub use gen::{GenProgram, Rng, Scenario};

/// A deliberate, driver-level invariant breach for testing the fuzzer
/// itself (armed via `FEX_FUZZ_BREAK=fusion|jobs`). The mutation happens
/// to the *collected artifacts*, after the pipeline ran — the
/// measurement path stays untouched — so a caught break demonstrates
/// oracle sensitivity, not a planted product bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakMode {
    /// Corrupt one numeric cell of the toggles-off results CSV, as a
    /// fusion-dependent measurement drift would.
    Fusion,
    /// Drop the last journal event of the `--jobs 1` rerun, as a lost
    /// merge would.
    Jobs,
}

impl BreakMode {
    /// Parses the `FEX_FUZZ_BREAK` environment variable.
    pub fn from_env() -> Option<BreakMode> {
        match std::env::var("FEX_FUZZ_BREAK").ok()?.as_str() {
            "fusion" => Some(BreakMode::Fusion),
            "jobs" => Some(BreakMode::Jobs),
            _ => None,
        }
    }
}

/// Options of one `fex fuzz` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOptions {
    /// Master seed; case `i` derives its own seed from `(seed, i)`.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: usize,
    /// Where repro bundles of failing cases are written.
    pub bundle_dir: PathBuf,
    /// Cap on shrink-candidate evaluations per failing case.
    pub max_shrink: usize,
    /// Deliberate invariant breach (test-only).
    pub break_mode: Option<BreakMode>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 42,
            cases: 25,
            bundle_dir: PathBuf::from("target/fex-fuzz"),
            max_shrink: 48,
            break_mode: None,
        }
    }
}

/// One oracle violation.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// Which oracle fired (`toggles`, `jobs`, `metrics`, `diag`,
    /// `store`, `warm`, `recovery`, `serve`, or `pipeline` for a
    /// scenario that errored the pipeline outright).
    pub oracle: &'static str,
    /// What disagreed.
    pub detail: String,
}

/// One failing case: the original hit, the shrunk repro and its bundle.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Case index within the run.
    pub case_index: usize,
    /// The case's own seed (replayable as `<seed> <case>`).
    pub case_seed: u64,
    /// The violation (re-checked on the shrunk scenario).
    pub failure: OracleFailure,
    /// The minimal scenario that still fails.
    pub shrunk: Scenario,
    /// Where the repro bundle was written, if it could be.
    pub bundle: Option<PathBuf>,
}

/// The outcome of a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Master seed.
    pub seed: u64,
    /// Cases checked.
    pub cases: usize,
    /// Violations found (empty on a clean run).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether every case passed every oracle.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the `fex fuzz` output. Deterministic for a given seed and
    /// case count — no wall times, no absolute paths beyond the bundle.
    pub fn render(&self) -> String {
        let mut s = format!("fex fuzz: seed {}, {} case(s)\n", self.seed, self.cases);
        for f in &self.failures {
            let _ = writeln!(
                s,
                "\ncase {} (seed {:#018x}) FAILED oracle `{}`:\n  {}",
                f.case_index, f.case_seed, f.failure.oracle, f.failure.detail
            );
            let _ = writeln!(s, "shrunk repro:");
            for line in f.shrunk.describe().lines() {
                let _ = writeln!(s, "  {line}");
            }
            if let Some(b) = &f.bundle {
                let _ = writeln!(s, "bundle: {}", b.display());
            }
        }
        if self.ok() {
            let _ = writeln!(s, "all {} case(s) passed all oracles", self.cases);
        } else {
            let _ = writeln!(
                s,
                "\n{} of {} case(s) failed; replay with `fex fuzz --seed <case-seed> --cases 1` \
                 or commit `<seed> <case>` to tests/fuzz_regressions.txt",
                self.failures.len(),
                self.cases
            );
        }
        s
    }
}

/// Runs the fuzzer: generates `opts.cases` scenarios, checks every
/// oracle on each, shrinks failures and writes repro bundles.
///
/// # Errors
///
/// Only on infrastructure failures (bundle directory not writable);
/// oracle violations and pipeline errors are reported, not returned.
pub fn fuzz(opts: &FuzzOptions) -> Result<FuzzReport> {
    let mut failures = Vec::new();
    for index in 0..opts.cases {
        let scenario = Scenario::generate(opts.seed, index);
        let Some(first) = case_verdict(&scenario, opts.break_mode) else { continue };
        let shrunk = shrink(&scenario, opts.break_mode, opts.max_shrink);
        let failure = case_verdict(&shrunk, opts.break_mode).unwrap_or(first);
        let bundle = write_bundle(&opts.bundle_dir, opts.seed, index, &shrunk, &failure).ok();
        failures.push(FuzzFailure {
            case_index: index,
            case_seed: scenario.case_seed,
            failure,
            shrunk,
            bundle,
        });
    }
    Ok(FuzzReport { seed: opts.seed, cases: opts.cases, failures })
}

/// Replays committed regression seeds from a `<seed> <case>` file
/// (`#`-comments and blank lines allowed).
///
/// # Errors
///
/// [`FexError::Data`] when the file is unreadable or a line is not two
/// integers.
pub fn replay_regressions(path: &Path, opts: &FuzzOptions) -> Result<FuzzReport> {
    let text = fs::read_to_string(path)
        .map_err(|e| FexError::Data(format!("cannot read `{}`: {e}", path.display())))?;
    let mut failures = Vec::new();
    let mut cases = 0;
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = || {
            FexError::Data(format!(
                "{}:{}: expected `<seed> <case>`, got `{line}`",
                path.display(),
                n + 1
            ))
        };
        let seed: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let index: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        cases += 1;
        let scenario = Scenario::generate(seed, index);
        if let Some(failure) = case_verdict(&scenario, opts.break_mode) {
            failures.push(FuzzFailure {
                case_index: index,
                case_seed: scenario.case_seed,
                failure,
                shrunk: scenario,
                bundle: None,
            });
        }
    }
    Ok(FuzzReport { seed: opts.seed, cases, failures })
}

// ---------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------

/// The collected artifacts of one pipeline run.
struct CaseRun {
    results: String,
    failures: String,
    events: Vec<JournalEvent>,
}

/// Pushes one configuration of the scenario's suite through the full
/// `Fex` pipeline and collects what landed in the container.
fn run_scenario(suite: &fex_suites::Suite, config: crate::ExperimentConfig) -> Result<CaseRun> {
    let mut fex = Fex::new();
    fex.run_suite(&config, suite.clone())?;
    let results = fex.result_csv("fuzz").unwrap_or_default();
    let failures = fex.failure_csv("fuzz").unwrap_or_default();
    let mut events = Vec::new();
    if let Some(jsonl) = fex.journal_jsonl("fuzz") {
        for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
            let e = journal::parse_line(line)
                .map_err(|i| FexError::Data(format!("unreadable journal line: {i}")))?;
            events.push(e);
        }
    }
    Ok(CaseRun { results, failures, events })
}

fn event_kind_counts(events: &[JournalEvent]) -> std::collections::BTreeMap<&'static str, usize> {
    let mut counts = std::collections::BTreeMap::new();
    for e in events {
        *counts.entry(e.kind()).or_insert(0) += 1;
    }
    counts
}

/// Events with schedule-dependent fields (worker, wall times, jobs)
/// zeroed — the jobs-invariant fingerprint.
fn normalized(events: &[JournalEvent]) -> Vec<JournalEvent> {
    events
        .iter()
        .map(|e| {
            let mut e = e.clone();
            e.normalize();
            e
        })
        .collect()
}

/// First line where two texts disagree, for oracle diagnostics.
fn first_diff(label: &str, a: &str, b: &str) -> String {
    for (n, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("{label} line {}: `{la}` vs `{lb}`", n + 1);
        }
    }
    format!("{label}: lengths differ ({} vs {} lines)", a.lines().count(), b.lines().count())
}

/// Checks every oracle on one scenario. `Ok(None)` means all invariants
/// held; `Ok(Some(_))` is a violation; `Err` is a pipeline failure
/// (which [`case_verdict`] also treats as a violation — generated
/// scenarios are valid by construction).
pub fn check_case(
    scenario: &Scenario,
    break_mode: Option<BreakMode>,
) -> Result<Option<OracleFailure>> {
    let suite = scenario.suite();
    let base_cfg = scenario.config();
    let fail = |oracle: &'static str, detail: String| Ok(Some(OracleFailure { oracle, detail }));

    let base = run_scenario(&suite, base_cfg.clone())?;

    // Oracle `toggles`: fusion, the MRU fast path and the decode cache
    // are performance-only — disabling all three must not move a byte.
    let mut toggles =
        run_scenario(&suite, base_cfg.clone().fusion(false).mru(false).decode_cache(false))?;
    if break_mode == Some(BreakMode::Fusion) {
        toggles.results.push_str("tampered,row,by,FEX_FUZZ_BREAK,0,0,0\n");
    }
    if base.results != toggles.results {
        return fail("toggles", first_diff("results.csv", &base.results, &toggles.results));
    }
    if base.failures != toggles.failures {
        return fail("toggles", first_diff("failures.csv", &base.failures, &toggles.failures));
    }

    // Oracle `jobs`: the parallel scheduler is an implementation detail —
    // CSVs byte-identical, journal streams identical after normalizing
    // the schedule-dependent fields.
    let mut jobs1 = run_scenario(&suite, base_cfg.clone().jobs(1))?;
    if break_mode == Some(BreakMode::Jobs) {
        jobs1.events.pop();
    }
    if base.results != jobs1.results {
        return fail("jobs", first_diff("results.csv", &base.results, &jobs1.results));
    }
    if base.failures != jobs1.failures {
        return fail("jobs", first_diff("failures.csv", &base.failures, &jobs1.failures));
    }
    let (kinds_n, kinds_1) = (event_kind_counts(&base.events), event_kind_counts(&jobs1.events));
    if kinds_n != kinds_1 {
        return fail("jobs", format!("event kind counts drifted: {kinds_n:?} vs {kinds_1:?}"));
    }
    let (norm_n, norm_1) = (normalized(&base.events), normalized(&jobs1.events));
    {
        let mut sn: Vec<String> = norm_n.iter().map(JournalEvent::to_json).collect();
        let mut s1: Vec<String> = norm_1.iter().map(JournalEvent::to_json).collect();
        sn.sort();
        s1.sort();
        if sn != s1 {
            let witness = sn
                .iter()
                .zip(&s1)
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("`{a}` vs `{b}`"))
                .unwrap_or_else(|| "stream lengths differ".into());
            return fail("jobs", format!("normalized journal streams drifted: {witness}"));
        }
    }

    // Oracle `metrics`: the roll-up is a pure function of the normalized
    // stream (hence jobs-invariant) and must agree with the CSV totals.
    let (m_n, m_1) = (Metrics::from_journal(&norm_n), Metrics::from_journal(&norm_1));
    if m_n != m_1 {
        return fail("metrics", format!("roll-up is not jobs-invariant: {m_n:?} vs {m_1:?}"));
    }
    let csv_rows = base.results.lines().count().saturating_sub(1);
    let csv_failures = base.failures.lines().count().saturating_sub(1);
    if m_n.rows != csv_rows || m_n.failure_records != csv_failures {
        return fail(
            "metrics",
            format!(
                "roll-up says {} rows / {} failures, CSVs have {csv_rows} / {csv_failures}",
                m_n.rows, m_n.failure_records
            ),
        );
    }

    // Oracle `diag`: every generated scenario's journal must round-trip
    // through the diagnostics reader with zero journal-integrity
    // findings — fex's own auditor must never flag a journal the real
    // pipeline just wrote.
    {
        let jsonl: String = base.events.iter().map(|e| e.to_json() + "\n").collect();
        let source = crate::diag::JournalSource::parse("fuzz.journal.jsonl", &jsonl);
        if !source.issues.is_empty() {
            let (line, issue) = &source.issues[0];
            return fail("diag", format!("journal line {line} did not re-parse: {issue}"));
        }
        let findings = crate::diag::check_journal_integrity(&source);
        if let Some(f) = findings.first() {
            return fail(
                "diag",
                format!("journal-integrity finding on a pipeline journal: {}", f.message),
            );
        }
    }

    // Oracles `store` and `recovery` work on a throwaway lab directory.
    let lab_dir = std::env::temp_dir().join(format!(
        "fex-fuzz-{}-{:x}",
        std::process::id(),
        scenario.case_seed
    ));
    let _ = fs::remove_dir_all(&lab_dir);
    let verdict = store_and_recovery_oracles(scenario, &suite, &base, &lab_dir);
    let _ = fs::remove_dir_all(&lab_dir);
    if let Ok(None) = &verdict {
        // Oracle `serve`: the daemon is a transport + cache layer in
        // front of the same pipeline, so serving the scenario must not
        // move a byte, and an identical cross-tenant resubmission must
        // come wholly from the cache.
        if scenario.serve {
            let serve_dir = std::env::temp_dir().join(format!(
                "fex-fuzz-serve-{}-{:x}",
                std::process::id(),
                scenario.case_seed
            ));
            let _ = fs::remove_dir_all(&serve_dir);
            let serve_verdict = serve_oracle(scenario, &serve_dir);
            let _ = fs::remove_dir_all(&serve_dir);
            return serve_verdict;
        }
    }
    verdict
}

/// Translates a fuzzed scenario into a serve-protocol [`Submission`]:
/// inline programs carry the generated sources, the repetition policy
/// flattens to the protocol's integer fields, and the fault plan is
/// deliberately *not* transmitted — faults are a pipeline-internal
/// debugging axis the protocol does not model, and fault-armed units
/// bypass the artifact graph, which would make the 100%-cache-serve
/// invariant vacuous.
fn serve_submission(scenario: &Scenario) -> crate::serve::Submission {
    let mut sub = crate::serve::Submission::new("a", "inline");
    sub.programs = scenario.programs.iter().map(|p| (p.name.clone(), p.source())).collect();
    sub.build_types = scenario.build_types.iter().map(|s| s.to_string()).collect();
    sub.threads = scenario.threads.clone();
    match scenario.repetitions {
        Repetitions::Fixed(n) => sub.reps = n,
        Repetitions::Adaptive { min, max, rel_precision } => {
            sub.reps = min;
            sub.max_reps = max;
            sub.precision_permille = (rel_precision * 1000.0).round() as u64;
        }
    }
    sub.seed = scenario.experiment_seed;
    sub.jobs = scenario.jobs;
    sub.budget = gen::FUZZ_INSTRUCTION_BUDGET;
    sub.tool = scenario.tool.name().to_string();
    sub
}

/// Oracle `serve`: both the daemon-side and the direct reference run
/// derive from the *same* [`Submission`] (one `f64` reconstruction of
/// the adaptive precision, one program emission), so any byte of drift
/// is the daemon's fault, not an encoding artifact.
fn serve_oracle(scenario: &Scenario, dir: &Path) -> Result<Option<OracleFailure>> {
    use crate::serve::{self, ServeOptions, Server};
    let fail = |detail: String| Ok(Some(OracleFailure { oracle: "serve", detail }));
    let sub = serve_submission(scenario);

    // Direct reference: the same submission pushed straight through the
    // pipeline, no daemon, no lab.
    let cfg = sub.config(None);
    let mut fex = Fex::new();
    fex.run_suite(&cfg, sub.suite()?)?;
    let direct_results = fex.result_csv(&cfg.name).unwrap_or_default();
    let direct_failures = fex.failure_csv(&cfg.name).unwrap_or_default();

    let opts = ServeOptions {
        socket: dir.join("serve.sock"),
        lab: dir.join("lab").to_string_lossy().into_owned(),
        workers: 2,
        queue_cap: 8,
    };
    let handle = Server::start(opts)?;
    let socket = handle.socket().to_path_buf();
    let first = serve::submit(&socket, &sub);
    let mut resub = sub.clone();
    resub.tenant = "b".into();
    let second = serve::submit(&socket, &resub);
    serve::shutdown(&socket)?;
    let summary = handle.wait()?;
    let (first, second) = (first?, second?);

    if first.results_csv != direct_results {
        return fail(first_diff("served results.csv", &first.results_csv, &direct_results));
    }
    if first.failures_csv != direct_failures {
        return fail(first_diff("served failures.csv", &first.failures_csv, &direct_failures));
    }
    if !second.store_hit {
        return fail("identical cross-tenant resubmission was not store-served".into());
    }
    if second.results_csv != first.results_csv || second.failures_csv != first.failures_csv {
        return fail(first_diff(
            "cache-served results.csv",
            &second.results_csv,
            &first.results_csv,
        ));
    }
    if summary.store_hits != 1 || summary.completed != 2 {
        return fail(format!(
            "daemon accounting drifted: {} store hits / {} completed (want 1 / 2)",
            summary.store_hits, summary.completed
        ));
    }
    Ok(None)
}

/// Oracle `store` (archival round-trip + rerun identity + quiet compare
/// gate) and oracle `recovery` (injected corruption is detected and
/// quarantinable), sharing one temp store.
fn store_and_recovery_oracles(
    scenario: &Scenario,
    suite: &fex_suites::Suite,
    base: &CaseRun,
    lab_dir: &Path,
) -> Result<Option<OracleFailure>> {
    let fail = |oracle: &'static str, detail: String| Ok(Some(OracleFailure { oracle, detail }));
    let store_cfg = scenario.config().lab(lab_dir.to_string_lossy());
    let s1 = run_scenario(suite, store_cfg.clone())?;
    let s2 = run_scenario(suite, store_cfg.clone())?;
    if s1.results != base.results || s2.results != base.results {
        return fail("store", "archival changed the collected results".into());
    }
    let store = RunStore::open(lab_dir)?;
    let entries = store.list()?;
    if entries.len() != 2 {
        return fail("store", format!("expected 2 index entries, found {}", entries.len()));
    }
    if entries[0].run_id != entries[1].run_id {
        return fail(
            "store",
            format!(
                "identical reruns got different ids: {} vs {}",
                entries[0].run_id, entries[1].run_id
            ),
        );
    }
    let stored = store.results_csv(&entries[1])?;
    if stored != s2.results {
        return fail("store", first_diff("stored results.csv", &stored, &s2.results));
    }
    // A persistent fault can legitimately fail every unit, leaving a
    // header-only CSV with nothing for the t-test to chew on — the quiet
    // gate check only applies when the runs produced rows.
    if s1.results.lines().count() > 1 {
        let frame_a = DataFrame::from_csv(&s1.results)?;
        let frame_b = DataFrame::from_csv(&s2.results)?;
        let cmp = Comparison::compare(&frame_a, &frame_b, "time", "baseline", "rerun")?;
        if cmp.has_regression() {
            return fail(
                "store",
                "compare gate flagged a regression between identical runs".into(),
            );
        }
    }

    // Oracle `warm`: the s2 rerun above replayed against the artifact
    // graph s1 populated — its CSVs already matched; the normalized
    // journal streams (graph hits rewrite to misses) must match too.
    {
        let mut w1: Vec<String> =
            normalized(&s1.events).iter().map(JournalEvent::to_json).collect();
        let mut w2: Vec<String> =
            normalized(&s2.events).iter().map(JournalEvent::to_json).collect();
        w1.sort();
        w2.sort();
        if w1 != w2 {
            let witness = w1
                .iter()
                .zip(&w2)
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("`{a}` vs `{b}`"))
                .unwrap_or_else(|| "stream lengths differ".into());
            return fail("warm", format!("warm journal stream drifted from cold: {witness}"));
        }
    }
    // Dirty-rerun axis: a semantically neutral source edit (trailing
    // newline) re-keys one program's whole node chain; the recomputed
    // cells must merge with the served ones into byte-identical CSVs.
    if scenario.dirty_rerun {
        let mut dirty_suite = suite.clone();
        if let Some(p) = dirty_suite.programs.first_mut() {
            p.source = Box::leak(format!("{}\n", p.source).into_boxed_str());
        }
        let dirty = run_scenario(&dirty_suite, store_cfg)?;
        if dirty.results != base.results {
            return fail(
                "warm",
                first_diff("dirty-rerun results.csv", &dirty.results, &base.results),
            );
        }
        if dirty.failures != base.failures {
            return fail(
                "warm",
                first_diff("dirty-rerun failures.csv", &dirty.failures, &base.failures),
            );
        }
    }

    // Oracle `recovery`: pick one corruption deterministically from the
    // case seed, inject it, and demand detection + clean quarantine.
    let mut r = Rng::new(scenario.case_seed ^ 0xfee1_dead_cafe_f00d);
    let corruption = *r.pick(&fsck::Corruption::ALL);
    fsck::inject(&store, corruption)?;
    let report = fsck::check(&store);
    if report.clean() {
        return fail("recovery", format!("injected {corruption} went undetected by fsck"));
    }
    // The hardened readers must shrug the damage off, not error out.
    let (_, _) = store.scan();
    store.list()?;
    let fixed = fsck::fsck(&store, true)?;
    if fixed.clean() {
        return fail("recovery", format!("{corruption}: fsck(quarantine) lost the issue list"));
    }
    let after = fsck::check(&store);
    if !after.clean() {
        return fail(
            "recovery",
            format!("{corruption}: store still dirty after quarantine:\n{}", after.render()),
        );
    }
    Ok(None)
}

/// [`check_case`] with pipeline errors folded into the verdict: a
/// scenario the pipeline rejects *is* a fuzz finding (the generator
/// guarantees validity).
pub fn case_verdict(scenario: &Scenario, break_mode: Option<BreakMode>) -> Option<OracleFailure> {
    match check_case(scenario, break_mode) {
        Ok(v) => v,
        Err(e) => Some(OracleFailure { oracle: "pipeline", detail: e.to_string() }),
    }
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedily minimises a failing scenario: repeatedly applies the first
/// simplification that still trips the *same oracle* as the original
/// failure, until none does or the evaluation budget is spent. Pinning
/// the oracle keeps the shrinker honest — a candidate that merely fails
/// differently (e.g. a dropped statement orphaning a variable turns a
/// `jobs` violation into a `pipeline` compile error) is discarded, not
/// adopted.
pub fn shrink(scenario: &Scenario, break_mode: Option<BreakMode>, max_evals: usize) -> Scenario {
    let Some(original) = case_verdict(scenario, break_mode) else {
        return scenario.clone();
    };
    let mut current = scenario.clone();
    let mut evals = 1;
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&current) {
            if evals >= max_evals {
                return current;
            }
            evals += 1;
            if case_verdict(&candidate, break_mode).is_some_and(|f| f.oracle == original.oracle) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// The simplification passes, biggest wins first.
fn shrink_candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // Drop whole programs.
    if s.programs.len() > 1 {
        for i in 0..s.programs.len() {
            let mut c = s.clone();
            c.programs.remove(i);
            // A fault scoped to the removed benchmark can't fire anymore.
            if let Some(f) = &c.fault {
                if f.benchmark.as_deref().is_some_and(|b| c.programs.iter().all(|p| p.name != b)) {
                    c.fault = None;
                }
            }
            out.push(c);
        }
    }
    // Drop build types.
    if s.build_types.len() > 1 {
        for i in 0..s.build_types.len() {
            let mut c = s.clone();
            c.build_types.remove(i);
            out.push(c);
        }
    }
    // Collapse the repetition policy.
    if s.repetitions != Repetitions::Fixed(1) {
        let mut c = s.clone();
        c.repetitions = Repetitions::Fixed(1);
        out.push(c);
    }
    // Disarm the fault plan.
    if s.fault.is_some() {
        let mut c = s.clone();
        c.fault = None;
        out.push(c);
    }
    // Flatten the thread sweep.
    if s.threads != vec![1] {
        let mut c = s.clone();
        c.threads = vec![1];
        out.push(c);
    }
    // Narrow the scheduler.
    if s.jobs > 2 {
        let mut c = s.clone();
        c.jobs = 2;
        out.push(c);
    }
    // Neutralise the decode pass subset.
    if s.passes != PassMask::all() {
        let mut c = s.clone();
        c.passes = PassMask::all();
        out.push(c);
    }
    // Restore auto chunk sizing.
    if s.chunk != 0 {
        let mut c = s.clone();
        c.chunk = 0;
        out.push(c);
    }
    // Skip the dirty rerun.
    if s.dirty_rerun {
        let mut c = s.clone();
        c.dirty_rerun = false;
        out.push(c);
    }
    // Skip the serve round-trip.
    if s.serve {
        let mut c = s.clone();
        c.serve = false;
        out.push(c);
    }
    // Drop statement blocks from each program's `main` (the fixed
    // checksum tail stays).
    for (pi, p) in s.programs.iter().enumerate() {
        for si in 0..p.shrinkable_stmts() {
            let mut c = s.clone();
            if let Some(main) = c.programs[pi].unit.funcs.iter_mut().find(|f| f.name == "main") {
                main.body.remove(si);
                out.push(c);
            }
        }
        // Drop helper/worker functions (dangling calls make the candidate
        // a pipeline error with a different shape; `shrink` only keeps it
        // if it still fails).
        if p.unit.funcs.len() > 1 {
            for fi in 0..p.unit.funcs.len() {
                if p.unit.funcs[fi].name == "main" {
                    continue;
                }
                let mut c = s.clone();
                c.programs[pi].unit.funcs.remove(fi);
                out.push(c);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Repro bundles
// ---------------------------------------------------------------------

/// Writes a minimal repro bundle: `repro.txt` (coordinates, oracle,
/// scenario description, replay instructions) plus one `.cmm` file per
/// generated program.
fn write_bundle(
    dir: &Path,
    seed: u64,
    case_index: usize,
    scenario: &Scenario,
    failure: &OracleFailure,
) -> Result<PathBuf> {
    let bundle = dir.join(format!("seed{seed}-case{case_index}"));
    let io = |e: std::io::Error| FexError::Data(format!("cannot write repro bundle: {e}"));
    fs::create_dir_all(&bundle).map_err(io)?;
    let mut repro = String::new();
    let _ = writeln!(repro, "fex fuzz repro");
    let _ = writeln!(repro, "seed: {seed}");
    let _ = writeln!(repro, "case: {case_index}");
    let _ = writeln!(repro, "oracle: {}", failure.oracle);
    let _ = writeln!(repro, "detail: {}", failure.detail);
    let _ = writeln!(repro);
    let _ = writeln!(repro, "replay: fex fuzz --seed {seed} --cases {}", case_index + 1);
    let _ = writeln!(repro, "pin:    echo \"{seed} {case_index}\" >> tests/fuzz_regressions.txt");
    let _ = writeln!(repro);
    repro.push_str(&scenario.describe());
    fs::write(bundle.join("repro.txt"), repro).map_err(io)?;
    for p in &scenario.programs {
        fs::write(bundle.join(format!("{}.cmm", p.name)), p.source()).map_err(io)?;
    }
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_mode_parses_the_env_convention() {
        // Direct constructor checks only: env vars are process-global and
        // the test harness is multi-threaded.
        assert_eq!(BreakMode::Fusion, BreakMode::Fusion);
        assert_ne!(
            std::mem::discriminant(&BreakMode::Fusion),
            std::mem::discriminant(&BreakMode::Jobs)
        );
    }

    #[test]
    fn shrink_candidates_cover_every_axis() {
        let scenario = (0..64)
            .map(|i| Scenario::generate(7, i))
            .find(|s| s.programs.len() > 1 && s.fault.is_some())
            .expect("64 cases should include a multi-program faulted scenario");
        let cands = shrink_candidates(&scenario);
        assert!(cands.len() > scenario.programs.len(), "expected many candidates");
        assert!(cands.iter().any(|c| c.programs.len() < scenario.programs.len()));
        assert!(cands.iter().any(|c| c.fault.is_none()));
        assert!(cands.iter().any(|c| c.repetitions == Repetitions::Fixed(1)));
    }

    #[test]
    fn report_rendering_is_deterministic() {
        let report = FuzzReport { seed: 9, cases: 3, failures: vec![] };
        assert!(report.ok());
        assert_eq!(report.render(), report.render());
        assert!(report.render().contains("all 3 case(s) passed"));
    }

    #[test]
    fn bundle_writes_repro_and_sources() {
        let scenario = Scenario::generate(5, 0);
        let failure = OracleFailure { oracle: "toggles", detail: "test".into() };
        let dir = std::env::temp_dir().join(format!("fex-fuzz-bundle-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let bundle = write_bundle(&dir, 5, 0, &scenario, &failure).unwrap();
        let repro = fs::read_to_string(bundle.join("repro.txt")).unwrap();
        assert!(repro.contains("oracle: toggles"));
        assert!(repro.contains("fex fuzz --seed 5"));
        assert!(bundle.join("gen0.cmm").is_file());
        let _ = fs::remove_dir_all(&dir);
    }
}
