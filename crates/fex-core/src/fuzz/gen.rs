//! Seeded scenario generation for `fex fuzz`.
//!
//! Everything here is a pure function of a 64-bit seed. A scenario is a
//! random-but-*valid* experiment: a handful of generated Cmm programs
//! (built at the AST level and emitted through [`fex_cc::emit`], so they
//! parse by construction), a build-type subset, a thread sweep, a
//! repetition policy, a scheduler width, a measurement tool and an
//! optional fault plan. Programs terminate by construction — every loop
//! bound is a literal, nesting is capped, and division/remainder only
//! ever use positive literal divisors — so the whole scenario completes
//! well inside the configured instruction budget.
//!
//! Program ASTs are kept on the scenario (not just source text) so the
//! shrinker in [`super`] can drop whole statement blocks and helper
//! functions structurally and re-emit.

use fex_cc::ast::{
    AssignOp, BinOp, Expr, FuncDecl, GlobalDecl, GlobalInit, LValue, Stmt, Ty, UnOp, Unit,
};
use fex_cc::Pos;
use fex_suites::{BenchProgram, Suite};
use fex_vm::{FaultKind, FaultPlan, MeasureTool, PassMask};

use crate::config::{ExperimentConfig, FaultInjection, Repetitions};
use crate::resilience::RunPolicy;

/// Instruction budget armed on every fuzzed run: orders of magnitude
/// above what a generated program can legally execute, so a breached
/// budget means the termination guarantee itself broke (or a `Hang`
/// fault fired, which charges the budget instantly by design).
pub const FUZZ_INSTRUCTION_BUDGET: u64 = 4_000_000;

/// splitmix64: the same mixing the framework uses for unit seeds — tiny,
/// deterministic, dependency-free.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 random bits.
    #[allow(clippy::should_implement_trait)] // not an iterator: never exhausts
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly random element of `xs`.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// The per-case seed: independently regenerable, so a failing case can be
/// replayed alone from `(fuzz seed, case index)` without re-running the
/// cases before it.
pub fn case_seed(seed: u64, index: usize) -> u64 {
    let mut r = Rng::new(seed ^ (index as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    r.next()
}

/// One generated benchmark program, kept as an AST for structural
/// shrinking.
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// Benchmark name (`gen0`, `gen1`, …).
    pub name: String,
    /// The program AST.
    pub unit: Unit,
}

impl GenProgram {
    /// Emits the program's Cmm source.
    pub fn source(&self) -> String {
        fex_cc::emit::emit_unit(&self.unit)
    }

    /// Statements in `main`'s body that may be shrunk away (everything
    /// before the fixed checksum/print/return tail).
    pub fn shrinkable_stmts(&self) -> usize {
        self.unit
            .funcs
            .iter()
            .find(|f| f.name == "main")
            .map_or(0, |f| f.body.len().saturating_sub(MAIN_TAIL))
    }
}

/// One fuzzed experiment: programs plus the full configuration axis roll.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The per-case seed this scenario was generated from.
    pub case_seed: u64,
    /// Generated benchmark programs.
    pub programs: Vec<GenProgram>,
    /// Build types under test (non-empty subset of the standard four).
    pub build_types: Vec<&'static str>,
    /// Thread sweep.
    pub threads: Vec<usize>,
    /// Repetition policy.
    pub repetitions: Repetitions,
    /// Scheduler width of the base run (always ≥ 2; the jobs oracle
    /// compares it against a `--jobs 1` rerun).
    pub jobs: usize,
    /// Measurement tool.
    pub tool: MeasureTool,
    /// Optional fault plan, scoped to one generated benchmark.
    pub fault: Option<FaultInjection>,
    /// The experiment seed fed to the framework.
    pub experiment_seed: u64,
    /// Decode pass subset of the base run (any of the 8 combinations;
    /// the toggles oracle compares against an everything-off rerun).
    pub passes: PassMask,
    /// Scheduler claim-chunk size (0 = auto-tuned).
    pub chunk: usize,
    /// Whether the `warm` oracle also replays a dirtied suite (one
    /// program's source gets a semantically neutral trailing newline)
    /// against the populated artifact graph.
    pub dirty_rerun: bool,
    /// Whether the `serve` oracle also pushes the scenario through an
    /// in-process `fex serve` daemon twice (two tenants) and compares
    /// against the direct pipeline output.
    pub serve: bool,
}

/// All standard build types the generator samples from.
pub const BUILD_TYPES: [&str; 4] = ["gcc_native", "clang_native", "gcc_asan", "clang_asan"];

impl Scenario {
    /// Generates case `index` of a fuzzing run seeded with `seed`.
    pub fn generate(seed: u64, index: usize) -> Scenario {
        let cs = case_seed(seed, index);
        let mut r = Rng::new(cs);

        let n_programs = r.range(1, 4) as usize;
        let programs = (0..n_programs)
            .map(|i| GenProgram { name: format!("gen{i}"), unit: gen_unit(&mut r) })
            .collect::<Vec<_>>();

        let mut build_types: Vec<&'static str> =
            BUILD_TYPES.iter().copied().filter(|_| r.chance(1, 2)).collect();
        if build_types.is_empty() {
            build_types.push(*r.pick(&BUILD_TYPES));
        }

        let threads = r.pick(&[vec![1], vec![2], vec![1, 2]]).clone();
        let repetitions = if r.chance(1, 4) {
            Repetitions::Adaptive {
                min: 2,
                max: r.range(2, 5) as usize,
                rel_precision: 0.05 + 0.1 * r.below(4) as f64,
            }
        } else {
            Repetitions::Fixed(r.range(1, 3) as usize)
        };
        let jobs = r.range(2, 5) as usize;
        let tool = *r.pick(&MeasureTool::all());
        let fault = if r.chance(1, 4) {
            let target = r.pick(&programs).name.clone();
            let plan = match r.below(3) {
                0 => FaultPlan::persistent(FaultKind::Trap),
                1 => FaultPlan::persistent(FaultKind::Hang),
                _ => FaultPlan::spurious(0.2 + 0.15 * r.below(5) as f64, FaultKind::Trap, r.next()),
            };
            Some(FaultInjection::for_benchmark(target, plan))
        } else {
            None
        };
        let experiment_seed = r.below(1000);
        // Drawn last so older case seeds regenerate the same programs.
        let passes = PassMask::from_bits(r.below(8) as u8);
        let chunk = r.below(5) as usize;
        let dirty_rerun = r.chance(1, 3);
        let serve = r.chance(1, 4);

        Scenario {
            case_seed: cs,
            programs,
            build_types,
            threads,
            repetitions,
            jobs,
            tool,
            fault,
            experiment_seed,
            passes,
            chunk,
            dirty_rerun,
            serve,
        }
    }

    /// The base [`ExperimentConfig`] of this scenario: toggles on, journal
    /// on, no lab. Oracle variants derive from it with the builders.
    pub fn config(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new("fuzz")
            .types(self.build_types.clone())
            .threads(self.threads.clone())
            .input(fex_suites::InputSize::Test)
            .tool(self.tool)
            .seed(self.experiment_seed)
            .jobs(self.jobs)
            .passes(self.passes)
            .chunk(self.chunk)
            .resilience(RunPolicy::default().budget(FUZZ_INSTRUCTION_BUDGET));
        cfg.repetitions = self.repetitions;
        if let Some(f) = &self.fault {
            cfg = cfg.fault(f.clone());
        }
        cfg
    }

    /// Materialises the scenario as a runnable [`Suite`]. Sources are
    /// emitted from the ASTs and leaked (suite programs carry `'static`
    /// strings); call once per scenario evaluation and clone the result.
    pub fn suite(&self) -> Suite {
        let programs = self
            .programs
            .iter()
            .map(|p| BenchProgram {
                name: Box::leak(p.name.clone().into_boxed_str()),
                description: "fuzz-generated",
                source: Box::leak(p.source().into_boxed_str()),
                test_args: vec![],
                small_args: vec![],
                native_args: vec![],
                dry_run: false,
            })
            .collect();
        Suite {
            name: "fuzz",
            description: "seeded fuzz scenario",
            programs,
            multithreaded: self.threads.iter().any(|&m| m > 1),
            proprietary: false,
        }
    }

    /// One-paragraph human description, used in repro bundles and the
    /// fuzz report. Deterministic — no wall-clock, no paths.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "case seed {:#018x}: {} program(s), types {:?}, threads {:?}, reps {:?}, \
             jobs {}, chunk {}, passes {}, tool {}, experiment seed {}, dirty rerun {}, \
             serve {}\n",
            self.case_seed,
            self.programs.len(),
            self.build_types,
            self.threads,
            self.repetitions,
            self.jobs,
            self.chunk,
            self.passes,
            self.tool,
            self.experiment_seed,
            self.dirty_rerun,
            self.serve,
        );
        match &self.fault {
            Some(f) => s.push_str(&format!(
                "fault: persistent={:?} spurious_rate={:.2} on `{}`\n",
                f.plan.persistent,
                f.plan.spurious_rate,
                f.benchmark.as_deref().unwrap_or("*")
            )),
            None => s.push_str("fault: none\n"),
        }
        for p in &self.programs {
            s.push_str(&format!(
                "program `{}`: {} line(s), {} function(s), {} global(s)\n",
                p.name,
                p.source().lines().count(),
                p.unit.funcs.len(),
                p.unit.globals.len(),
            ));
        }
        s
    }
}

// ---------------------------------------------------------------------
// Program generation
// ---------------------------------------------------------------------

/// Fixed statements at the end of `main` (checksum fold, sign clamp,
/// print, return) that the shrinker must preserve.
pub const MAIN_TAIL: usize = 4;

const P: Pos = Pos { line: 1, col: 1 };

fn name(n: &str) -> Expr {
    Expr::Name(n.to_string(), P)
}

fn int(v: i64) -> Expr {
    Expr::Int(v)
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), pos: P }
}

fn call(n: &str, args: Vec<Expr>) -> Expr {
    Expr::Call { name: n.to_string(), args, pos: P }
}

fn index(n: &str, idx: Expr) -> Expr {
    Expr::Index { name: n.to_string(), index: Box::new(idx), pos: P }
}

fn var(n: &str, ty: Option<Ty>, init: Expr) -> Stmt {
    Stmt::Var { ty, name: n.to_string(), init: Some(init), pos: P }
}

fn assign(n: &str, value: Expr) -> Stmt {
    Stmt::Assign { target: LValue::Name(n.to_string(), P), op: AssignOp::Set, value, pos: P }
}

fn assign_op(n: &str, op: AssignOp, value: Expr) -> Stmt {
    Stmt::Assign { target: LValue::Name(n.to_string(), P), op, value, pos: P }
}

fn assign_idx(n: &str, idx: Expr, value: Expr) -> Stmt {
    Stmt::Assign {
        target: LValue::Index { name: n.to_string(), index: idx, pos: P },
        op: AssignOp::Set,
        value,
        pos: P,
    }
}

/// `for (i = 0; i < bound; i = i + 1) { body }` with a literal bound —
/// the only loop shape the generator emits, so termination is free.
fn counted_for(i: &str, bound: i64, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        init: Some(Box::new(assign(i, int(0)))),
        cond: Some(bin(BinOp::Lt, name(i), int(bound))),
        step: Some(Box::new(assign(i, bin(BinOp::Add, name(i), int(1))))),
        body,
    }
}

/// Layout of the generated unit's shared state, decided up front.
struct Shape {
    gdata_len: Option<i64>,
    has_gacc: bool,
    helpers: usize,
}

/// Generates one terminating Cmm program.
fn gen_unit(r: &mut Rng) -> Unit {
    let shape = Shape {
        gdata_len: r.chance(1, 2).then(|| r.range(8, 33) as i64),
        has_gacc: r.chance(1, 3),
        helpers: r.below(3) as usize,
    };
    let mut unit = Unit::default();

    if let Some(len) = shape.gdata_len {
        unit.globals.push(GlobalDecl {
            name: "gdata".into(),
            ty: Ty::Int,
            len: Some(len as u64),
            init: GlobalInit::Zero,
            is_code_ptr: false,
            pos: P,
        });
    }
    if shape.has_gacc {
        unit.globals.push(GlobalDecl {
            name: "gacc".into(),
            ty: Ty::Int,
            len: None,
            init: GlobalInit::Int(r.range(1, 20) as i64),
            is_code_ptr: false,
            pos: P,
        });
    }

    for h in 0..shape.helpers {
        unit.funcs.push(gen_helper(r, h));
    }
    if shape.gdata_len.is_some() && r.chance(1, 4) {
        unit.funcs.push(parfor_worker(r, shape.gdata_len.unwrap_or(8)));
    }

    let mut body = vec![var("acc", None, int(r.range(1, 1000) as i64))];
    let blocks = r.range(1, 6) as usize;
    for k in 0..blocks {
        body.extend(gen_block(r, k, &shape, &unit));
    }
    // The fixed tail: fold, clamp, print, return — the program's
    // observable checksum across build types and schedules.
    body.push(assign("acc", bin(BinOp::Rem, name("acc"), int(1_000_000_007))));
    body.push(Stmt::If {
        cond: bin(BinOp::Lt, name("acc"), int(0)),
        then_body: vec![assign("acc", bin(BinOp::Sub, int(0), name("acc")))],
        else_body: vec![],
    });
    body.push(Stmt::Expr(call("print_int", vec![name("acc")])));
    body.push(Stmt::Return(Some(bin(BinOp::Rem, name("acc"), int(127))), P));

    unit.funcs.push(FuncDecl {
        name: "main".into(),
        params: vec![],
        ret: Some(Ty::Int),
        body,
        pos: P,
    });
    unit
}

/// `fn helper<h>(a, b) -> int { bounded loop; return folded; }`
fn gen_helper(r: &mut Rng, h: usize) -> FuncDecl {
    let bound = r.range(2, 25) as i64;
    let c = r.range(1, 13) as i64;
    FuncDecl {
        name: format!("helper{h}"),
        params: vec![("a".into(), Ty::Int), ("b".into(), Ty::Int)],
        ret: Some(Ty::Int),
        body: vec![
            var("s", None, int(0)),
            var("i", None, int(0)),
            Stmt::While {
                cond: bin(BinOp::Lt, name("i"), int(bound)),
                body: vec![
                    assign_op(
                        "s",
                        AssignOp::Add,
                        bin(
                            BinOp::Add,
                            bin(BinOp::Rem, name("a"), int(13)),
                            bin(BinOp::Mul, name("b"), name("i")),
                        ),
                    ),
                    assign_op("i", AssignOp::Add, int(1)),
                ],
            },
            Stmt::Return(Some(bin(BinOp::Rem, bin(BinOp::Mul, name("s"), int(c)), int(65521))), P),
        ],
        pos: P,
    }
}

/// `fn pw(i) { gdata[i] = …; }` — the data-parallel worker. Each
/// invocation writes a *distinct* slot, so the parfor is race-free and
/// its result independent of worker interleaving.
fn parfor_worker(r: &mut Rng, _len: i64) -> FuncDecl {
    let c = r.range(1, 9) as i64;
    FuncDecl {
        name: "pw".into(),
        params: vec![("i".into(), Ty::Int)],
        ret: None,
        body: vec![assign_idx(
            "gdata",
            name("i"),
            bin(BinOp::Add, bin(BinOp::Mul, name("i"), int(c)), int(3)),
        )],
        pos: P,
    }
}

/// One self-contained statement block for `main`, accumulating into
/// `acc`. Block kind availability depends on the unit's shape (globals,
/// helpers, parfor worker).
fn gen_block(r: &mut Rng, k: usize, shape: &Shape, unit: &Unit) -> Vec<Stmt> {
    let has_pw = unit.funcs.iter().any(|f| f.name == "pw");
    let mut kinds: Vec<u64> = vec![0, 1, 2, 3, 4];
    if shape.helpers > 0 {
        kinds.push(5);
    }
    if shape.has_gacc {
        kinds.push(6);
    }
    if let Some(len) = shape.gdata_len {
        kinds.push(7);
        if has_pw && len > 0 {
            kinds.push(8);
        }
    }
    let i = format!("i{k}");
    match *r.pick(&kinds) {
        // for-accumulate: acc += i*c1 + c2 over a literal range.
        0 => {
            let bound = r.range(2, 49) as i64;
            let (c1, c2) = (r.range(1, 9) as i64, r.range(0, 17) as i64);
            vec![
                var(&i, None, int(0)),
                counted_for(
                    &i,
                    bound,
                    vec![assign_op(
                        "acc",
                        AssignOp::Add,
                        bin(BinOp::Add, bin(BinOp::Mul, name(&i), int(c1)), int(c2)),
                    )],
                ),
            ]
        }
        // nested while: bit-mixing with xor/shift, bounded both levels.
        1 => {
            let (outer, inner) = (r.range(2, 17) as i64, r.range(2, 9) as i64);
            let j = format!("j{k}");
            vec![
                var(&i, None, int(0)),
                Stmt::While {
                    cond: bin(BinOp::Lt, name(&i), int(outer)),
                    body: vec![
                        var(&j, None, int(0)),
                        Stmt::While {
                            cond: bin(BinOp::Lt, name(&j), int(inner)),
                            body: vec![
                                assign_op(
                                    "acc",
                                    AssignOp::Add,
                                    bin(BinOp::Xor, bin(BinOp::Shl, name(&i), int(2)), name(&j)),
                                ),
                                assign_op(&j, AssignOp::Add, int(1)),
                            ],
                        },
                        assign_op(&i, AssignOp::Add, int(1)),
                    ],
                },
            ]
        }
        // if/else-if chain on the accumulator's parity/magnitude.
        2 => {
            let c = r.range(1, 100) as i64;
            vec![Stmt::If {
                cond: bin(BinOp::Eq, bin(BinOp::Rem, name("acc"), int(2)), int(0)),
                then_body: vec![assign_op("acc", AssignOp::Add, int(c))],
                else_body: vec![Stmt::If {
                    cond: bin(BinOp::Gt, name("acc"), int(500)),
                    then_body: vec![assign_op("acc", AssignOp::Sub, int(c))],
                    else_body: vec![assign_op("acc", AssignOp::Mul, int(3))],
                }],
            }]
        }
        // local stack array: write then read back in one bounded loop.
        3 => {
            let len = r.range(4, 17) as i64;
            let buf = format!("buf{k}");
            vec![
                Stmt::Local { name: buf.clone(), len: len as u64, ty: Ty::Int, pos: P },
                var(&i, None, int(0)),
                counted_for(
                    &i,
                    len,
                    vec![
                        assign_idx(&buf, name(&i), bin(BinOp::Mul, name(&i), name(&i))),
                        assign_op("acc", AssignOp::Add, index(&buf, name(&i))),
                    ],
                ),
            ]
        }
        // float math through the libm builtins, cast back to int.
        4 => {
            let f = format!("f{k}");
            let lit = 0.5 + r.below(8) as f64 * 0.25;
            vec![
                var(&f, Some(Ty::Float), Expr::Float(lit)),
                assign(
                    &f,
                    bin(
                        BinOp::Add,
                        call("sqrt", vec![call("fabs", vec![name(&f)])]),
                        call("float", vec![bin(BinOp::Rem, name("acc"), int(97))]),
                    ),
                ),
                assign_op("acc", AssignOp::Add, call("int", vec![name(&f)])),
            ]
        }
        // call a generated helper.
        5 => {
            let h = r.below(shape.helpers as u64);
            vec![assign_op(
                "acc",
                AssignOp::Add,
                call(
                    &format!("helper{h}"),
                    vec![bin(BinOp::Rem, name("acc"), int(50)), int(r.range(1, 7) as i64)],
                ),
            )]
        }
        // mix through the global scalar.
        6 => vec![
            assign_op("gacc", AssignOp::Add, bin(BinOp::Rem, name("acc"), int(11))),
            assign_op("acc", AssignOp::Add, name("gacc")),
        ],
        // sequential global-array fill + sum.
        7 => {
            let len = shape.gdata_len.unwrap_or(8);
            let c = r.range(1, 6) as i64;
            vec![
                var(&i, None, int(0)),
                counted_for(
                    &i,
                    len,
                    vec![
                        assign_idx("gdata", name(&i), bin(BinOp::Mul, name(&i), int(c))),
                        assign_op("acc", AssignOp::Add, index("gdata", name(&i))),
                    ],
                ),
            ]
        }
        // parfor over disjoint slots, then a sequential sum.
        _ => {
            let len = shape.gdata_len.unwrap_or(8);
            vec![
                Stmt::ParFor {
                    worker: "pw".into(),
                    lo: int(0),
                    hi: int(len),
                    args: vec![],
                    pos: P,
                },
                var(&i, None, int(0)),
                counted_for(
                    &i,
                    len,
                    vec![assign_op("acc", AssignOp::Add, index("gdata", name(&i)))],
                ),
            ]
        }
    }
}

/// A negation the emitter folds like the parser (kept for generator
/// variety without breaking the fixpoint property).
#[allow(dead_code)]
fn neg(e: Expr) -> Expr {
    Expr::Un { op: UnOp::Neg, expr: Box::new(e), pos: P }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut r = Rng::new(1);
        for _ in 0..100 {
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn case_seeds_are_independent_of_order() {
        assert_eq!(case_seed(42, 7), case_seed(42, 7));
        assert_ne!(case_seed(42, 7), case_seed(42, 8));
        assert_ne!(case_seed(42, 7), case_seed(43, 7));
    }

    #[test]
    fn scenarios_regenerate_identically() {
        let a = Scenario::generate(42, 3);
        let b = Scenario::generate(42, 3);
        assert_eq!(a.describe(), b.describe());
        assert_eq!(
            a.programs.iter().map(GenProgram::source).collect::<Vec<_>>(),
            b.programs.iter().map(GenProgram::source).collect::<Vec<_>>()
        );
    }

    #[test]
    fn generated_programs_parse_and_are_emit_fixpoints() {
        for index in 0..40 {
            let scenario = Scenario::generate(1234, index);
            for p in &scenario.programs {
                let src = p.source();
                let unit = fex_cc::parser::parse(&src).unwrap_or_else(|e| {
                    panic!("case {index} `{}` does not parse: {e}\n{src}", p.name)
                });
                assert_eq!(
                    fex_cc::emit::emit_unit(&unit),
                    src,
                    "case {index} `{}` is not an emit fixpoint",
                    p.name
                );
            }
        }
    }

    #[test]
    fn generator_exercises_pass_and_chunk_axes() {
        let scenarios: Vec<Scenario> = (0..40).map(|i| Scenario::generate(42, i)).collect();
        assert!(scenarios.iter().any(|s| s.passes == PassMask::all()));
        assert!(scenarios.iter().any(|s| s.passes == PassMask::none()));
        assert!(scenarios
            .iter()
            .any(|s| s.passes != PassMask::all() && s.passes != PassMask::none()));
        assert!(scenarios.iter().any(|s| s.chunk == 0));
        assert!(scenarios.iter().any(|s| s.chunk > 0));
        assert!(scenarios.iter().any(|s| s.dirty_rerun));
        assert!(scenarios.iter().any(|s| !s.dirty_rerun));
        assert!(scenarios.iter().any(|s| s.serve));
        assert!(scenarios.iter().any(|s| !s.serve));
    }

    #[test]
    fn scenario_configs_validate() {
        for index in 0..40 {
            let scenario = Scenario::generate(99, index);
            scenario.config().validate().unwrap();
            assert!(scenario.jobs >= 2, "the jobs oracle needs a parallel base run");
            assert!(!scenario.build_types.is_empty());
            let suite = scenario.suite();
            assert_eq!(suite.programs.len(), scenario.programs.len());
        }
    }
}
