//! The three-layer build system (Fig 2 of the paper).
//!
//! Build configurations are literal makefile-like layers:
//!
//! * the **common layer** (`common.mk`) holds flags shared by every build,
//! * **compiler layers** (`gcc_native.mk`, `clang_native.mk`) pin `CC`,
//! * **type layers** (`gcc_asan.mk`, …) include a compiler layer and add
//!   experiment flags (`CFLAGS += -fsanitize=address`),
//! * the **application layer** is each benchmark's own makefile (name and
//!   sources), supplied by the suite registry.
//!
//! Any application can be built with any configuration because the layers
//! compose independently — the paper's central build-system claim. The
//! resolved variable set is translated into [`fex_cc::BuildOptions`] and
//! compiled; binaries land in a content-keyed cache and the container's
//! `build/` tree, and are rebuilt for every experiment unless
//! `--no-build` is given (§II-A).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use fex_cc::{BackendProfile, BuildOptions};
use fex_container::Digest;
use fex_vm::{decode_program_passes, CostModel, DecodedProgram, PassMask, Program};

use crate::error::{FexError, Result};

/// Makefile assignment flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assign {
    /// `VAR := value`
    Set,
    /// `VAR += value`
    Append,
}

/// One makefile layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MakeLayer {
    /// Layer name (`common`, `gcc_native`, `gcc_asan`, …).
    pub name: String,
    /// Included (parent) layer, resolved first.
    pub include: Option<String>,
    /// Variable assignments, applied in order.
    pub vars: Vec<(String, Assign, String)>,
}

/// The set of build-type layers (the `makefiles/` directory).
#[derive(Debug, Clone, Default)]
pub struct MakefileSet {
    layers: BTreeMap<String, MakeLayer>,
}

impl MakefileSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The layers shipped with the framework: common, gcc/clang compiler
    /// layers and the AddressSanitizer type layers.
    pub fn standard() -> Self {
        let mut s = MakefileSet::new();
        s.add(MakeLayer {
            name: "common".into(),
            include: None,
            vars: vec![
                ("OPT".into(), Assign::Set, "-O2".into()),
                ("CFLAGS".into(), Assign::Set, "-O2".into()),
                ("LDFLAGS".into(), Assign::Set, "".into()),
            ],
        });
        s.add(MakeLayer {
            name: "gcc_native".into(),
            include: Some("common".into()),
            vars: vec![
                ("CC".into(), Assign::Set, "gcc".into()),
                ("CXX".into(), Assign::Set, "g++".into()),
            ],
        });
        s.add(MakeLayer {
            name: "clang_native".into(),
            include: Some("common".into()),
            vars: vec![
                ("CC".into(), Assign::Set, "clang".into()),
                ("CXX".into(), Assign::Set, "clang++".into()),
            ],
        });
        s.add(MakeLayer {
            name: "gcc_asan".into(),
            include: Some("gcc_native".into()),
            vars: vec![
                ("CFLAGS".into(), Assign::Append, "-fsanitize=address".into()),
                ("LDFLAGS".into(), Assign::Append, "-fsanitize=address".into()),
            ],
        });
        s.add(MakeLayer {
            name: "clang_asan".into(),
            include: Some("clang_native".into()),
            vars: vec![
                ("CFLAGS".into(), Assign::Append, "-fsanitize=address".into()),
                ("LDFLAGS".into(), Assign::Append, "-fsanitize=address".into()),
            ],
        });
        s
    }

    /// Adds (or replaces) a layer — this is how users register new build
    /// types, the paper's 6-LoC `clang_native.mk` case study.
    pub fn add(&mut self, layer: MakeLayer) {
        self.layers.insert(layer.name.clone(), layer);
    }

    /// Registered type names.
    pub fn type_names(&self) -> Vec<&str> {
        self.layers.keys().map(String::as_str).collect()
    }

    /// Resolves a build type into its flat variable map by walking the
    /// include chain root-first.
    ///
    /// # Errors
    ///
    /// [`FexError::UnknownName`] if the type or an include is missing;
    /// [`FexError::Config`] on include cycles.
    pub fn resolve(&self, type_name: &str) -> Result<BTreeMap<String, String>> {
        let mut chain = Vec::new();
        let mut cur = Some(type_name.to_string());
        while let Some(name) = cur {
            if chain.contains(&name) {
                return Err(FexError::Config(format!("makefile include cycle at `{name}`")));
            }
            let layer = self.layers.get(&name).ok_or_else(|| FexError::UnknownName {
                kind: "build type / makefile layer",
                name: name.clone(),
            })?;
            cur = layer.include.clone();
            chain.push(name);
        }
        let mut vars: BTreeMap<String, String> = BTreeMap::new();
        for name in chain.iter().rev() {
            for (k, assign, v) in &self.layers[name].vars {
                match assign {
                    Assign::Set => {
                        vars.insert(k.clone(), v.clone());
                    }
                    Assign::Append => {
                        let slot = vars.entry(k.clone()).or_default();
                        if !slot.is_empty() && !v.is_empty() {
                            slot.push(' ');
                        }
                        slot.push_str(v);
                    }
                }
            }
        }
        Ok(vars)
    }

    /// Translates a resolved build type into compiler options.
    ///
    /// # Errors
    ///
    /// As [`MakefileSet::resolve`], plus [`FexError::Config`] when `CC` is
    /// not a known compiler.
    pub fn build_options(&self, type_name: &str, debug: bool) -> Result<BuildOptions> {
        let vars = self.resolve(type_name)?;
        let cc = vars.get("CC").map(String::as_str).unwrap_or("gcc");
        let backend = BackendProfile::by_name(cc)
            .ok_or_else(|| FexError::Config(format!("unknown compiler `{cc}`")))?;
        let cflags = vars.get("CFLAGS").map(String::as_str).unwrap_or("");
        let asan = cflags.contains("-fsanitize=address");
        let opt_level = if debug || cflags.contains("-O0") { 0 } else { 2 };
        Ok(BuildOptions { backend, asan, opt_level, debug })
    }
}

/// A built binary plus provenance.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The executable program.
    pub program: Arc<Program>,
    /// Hot-loop (decoded) form of `program`, produced once at build time
    /// under the default cost model and shared by every run unit that
    /// executes this artifact — the decoded-artifact cache.
    pub decoded: Arc<DecodedProgram>,
    /// Content digest of (benchmark, source, resolved compiler options,
    /// decode pass subset, cost-model fingerprint): the cache key, equal
    /// to the artifact graph's decoded-node key for this build.
    pub digest: Digest,
    /// Benchmark name.
    pub benchmark: String,
    /// Build type name.
    pub build_type: String,
    /// `cc`-style invocation string.
    pub build_info: String,
}

/// The build subsystem: layer resolution + compilation + cache.
#[derive(Debug)]
pub struct BuildSystem {
    makefiles: MakefileSet,
    /// Content-keyed cache: the [`Digest`] is computed from borrowed
    /// inputs (no per-lookup allocation) and entries are `Arc`-shared,
    /// so a hit costs a hash and a refcount bump.
    cache: HashMap<Digest, Arc<Artifact>>,
    builds_performed: usize,
    decodes_performed: usize,
    /// The peephole pass subset artifacts are decoded with.
    passes: PassMask,
}

impl BuildSystem {
    /// Creates a build system over a makefile set.
    pub fn new(makefiles: MakefileSet) -> Self {
        BuildSystem {
            makefiles,
            cache: HashMap::new(),
            builds_performed: 0,
            decodes_performed: 0,
            passes: PassMask::all(),
        }
    }

    /// The makefile layers (for registration of new types).
    pub fn makefiles_mut(&mut self) -> &mut MakefileSet {
        &mut self.makefiles
    }

    /// The makefile layers.
    pub fn makefiles(&self) -> &MakefileSet {
        &self.makefiles
    }

    /// Number of actual compilations performed (rebuild accounting).
    pub fn builds_performed(&self) -> usize {
        self.builds_performed
    }

    /// Number of decode passes performed; every run unit beyond this
    /// count was served from the decoded-artifact cache.
    pub fn decodes_performed(&self) -> usize {
        self.decodes_performed
    }

    /// Snapshot of `(builds_performed, decodes_performed)` in one call,
    /// for observability layers that track deltas across an experiment
    /// (a build whose count does not move was a cache hit).
    pub fn work_performed(&self) -> (usize, usize) {
        (self.builds_performed, self.decodes_performed)
    }

    /// Sets the peephole pass subset artifacts are decoded with
    /// (`--passes`/`--no-pass`). The subset is part of the cache key, so
    /// changing it can never serve a stale decoded form.
    pub fn set_passes(&mut self, passes: PassMask) {
        self.passes = passes;
    }

    /// Alias for [`BuildSystem::set_passes`] with the all-or-nothing
    /// historical switch (`--no-fusion`).
    pub fn set_fusion(&mut self, fusion: bool) {
        self.passes = if fusion { PassMask::all() } else { PassMask::none() };
    }

    /// Drops all cached binaries — the paper rebuilds everything at the
    /// start of each experiment "otherwise a mix of old and new
    /// compilation flags and/or libraries could skew the results".
    pub fn clean(&mut self) {
        self.cache.clear();
    }

    /// The content digest an artifact build would be cached under: the
    /// artifact graph's *decoded*-level key, derived source → compiled →
    /// decoded so every layer of configuration dirties exactly its own
    /// subtree (see [`crate::graph`]). Computed entirely from borrowed
    /// inputs — no per-lookup allocation.
    fn artifact_digest(
        benchmark: &str,
        source: &str,
        opts: &BuildOptions,
        passes: PassMask,
    ) -> Digest {
        let source_key = fex_cc::source_digest(benchmark, source);
        let compiled = crate::graph::compiled_key(
            source_key,
            opts.backend.name,
            opts.backend.version,
            opts.opt_level,
            opts.asan,
            opts.debug,
        );
        // Artifacts are decoded under the default cost model (below), so
        // its fingerprint is the one baked into the key.
        crate::graph::decoded_key(compiled, passes.bits(), CostModel::default().fingerprint())
    }

    /// Builds `source` as `benchmark` with the given type. With
    /// `no_build`, a cached binary is reused when present (`--no-build`);
    /// otherwise every call recompiles.
    ///
    /// # Errors
    ///
    /// [`FexError::Build`] wrapping the compiler diagnostic, or the
    /// resolution errors of [`MakefileSet::build_options`].
    pub fn build(
        &mut self,
        benchmark: &str,
        source: &str,
        type_name: &str,
        debug: bool,
        no_build: bool,
    ) -> Result<Arc<Artifact>> {
        let opts = self.makefiles.build_options(type_name, debug)?;
        let digest = Self::artifact_digest(benchmark, source, &opts, self.passes);
        if no_build {
            if let Some(a) = self.cache.get(&digest) {
                return Ok(Arc::clone(a));
            }
        }
        let program = fex_cc::compile(source, &opts).map_err(|source| FexError::Build {
            benchmark: benchmark.to_string(),
            build_type: type_name.to_string(),
            source,
        })?;
        self.builds_performed += 1;
        // Decode once, at build time, under the default cost model — the
        // one every experiment-loop machine runs with. A machine whose
        // config diverges falls back to a fresh decode at load.
        let decoded = decode_program_passes(&program, &CostModel::default(), self.passes)
            .unwrap_or_else(|e| panic!("compiler emitted an undecodable program: {e}"));
        self.decodes_performed += 1;
        let artifact = Arc::new(Artifact {
            program: Arc::new(program),
            decoded: Arc::new(decoded),
            digest,
            benchmark: benchmark.to_string(),
            build_type: type_name.to_string(),
            build_info: opts.build_info(),
        });
        self.cache.insert(digest, Arc::clone(&artifact));
        Ok(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn include_chain_resolves_root_first() {
        let s = MakefileSet::standard();
        let v = s.resolve("gcc_asan").unwrap();
        assert_eq!(v["CC"], "gcc");
        assert_eq!(v["CFLAGS"], "-O2 -fsanitize=address");
        assert_eq!(v["LDFLAGS"], "-fsanitize=address");
    }

    #[test]
    fn any_app_with_any_type() {
        let s = MakefileSet::standard();
        for ty in ["gcc_native", "gcc_asan", "clang_native", "clang_asan"] {
            let o = s.build_options(ty, false).unwrap();
            assert_eq!(o.asan, ty.contains("asan"));
            assert_eq!(o.backend.name, if ty.starts_with("gcc") { "gcc" } else { "clang" });
        }
    }

    #[test]
    fn unknown_type_and_cycles_are_errors() {
        let mut s = MakefileSet::standard();
        assert!(matches!(s.resolve("icc_native"), Err(FexError::UnknownName { .. })));
        s.add(MakeLayer { name: "a".into(), include: Some("b".into()), vars: vec![] });
        s.add(MakeLayer { name: "b".into(), include: Some("a".into()), vars: vec![] });
        assert!(matches!(s.resolve("a"), Err(FexError::Config(_))));
    }

    #[test]
    fn debug_builds_disable_optimisation() {
        let s = MakefileSet::standard();
        assert_eq!(s.build_options("gcc_native", true).unwrap().opt_level, 0);
        assert_eq!(s.build_options("gcc_native", false).unwrap().opt_level, 2);
    }

    #[test]
    fn custom_compiler_layer_in_a_few_lines() {
        // The paper's case study: adding clang took a 6-line makefile.
        let mut s = MakefileSet::new();
        s.add(MakeLayer {
            name: "common".into(),
            include: None,
            vars: vec![("CFLAGS".into(), Assign::Set, "-O2".into())],
        });
        s.add(MakeLayer {
            name: "clang_native".into(),
            include: Some("common".into()),
            vars: vec![("CC".into(), Assign::Set, "clang".into())],
        });
        let o = s.build_options("clang_native", false).unwrap();
        assert_eq!(o.backend.name, "clang");
    }

    #[test]
    fn rebuild_semantics_and_no_build_flag() {
        let mut b = BuildSystem::new(MakefileSet::standard());
        let src = "fn main() -> int { return 1; }";
        b.build("t", src, "gcc_native", false, false).unwrap();
        b.build("t", src, "gcc_native", false, false).unwrap();
        assert_eq!(b.builds_performed(), 2, "experiments rebuild by default");
        b.build("t", src, "gcc_native", false, true).unwrap();
        assert_eq!(b.builds_performed(), 2, "--no-build reuses the cache");
        b.clean();
        b.build("t", src, "gcc_native", false, true).unwrap();
        assert_eq!(b.builds_performed(), 3, "cache cleaned, must rebuild");
    }

    #[test]
    fn decoded_artifacts_are_arc_shared_and_counted() {
        let mut b = BuildSystem::new(MakefileSet::standard());
        let src = "fn main() -> int { return 1; }";
        let a = b.build("t", src, "gcc_native", false, false).unwrap();
        assert_eq!(b.decodes_performed(), 1);
        assert_eq!(a.decoded.passes, PassMask::all());
        let cached = b.build("t", src, "gcc_native", false, true).unwrap();
        assert!(Arc::ptr_eq(&a, &cached), "--no-build returns the shared entry");
        assert_eq!(b.decodes_performed(), 1, "no re-decode on a cache hit");
        // Source, build type and pass subset all key the cache.
        let other =
            b.build("t", "fn main() -> int { return 2; }", "gcc_native", false, false).unwrap();
        assert_ne!(a.digest, other.digest);
        let clang = b.build("t", src, "clang_native", false, false).unwrap();
        assert_ne!(a.digest, clang.digest);
        b.set_fusion(false);
        let unfused = b.build("t", src, "gcc_native", false, false).unwrap();
        assert_ne!(a.digest, unfused.digest);
        assert_eq!(unfused.decoded.passes, PassMask::none());
        // A strict subset keys differently from both all and none.
        b.set_passes(PassMask::all().without("fuse").unwrap());
        let subset = b.build("t", src, "gcc_native", false, false).unwrap();
        assert_ne!(subset.digest, a.digest);
        assert_ne!(subset.digest, unfused.digest);
        assert!(!subset.decoded.passes.enables("fuse"));
    }

    #[test]
    fn artifact_digest_is_the_layered_graph_key() {
        let mut b = BuildSystem::new(MakefileSet::standard());
        let src = "fn main() -> int { return 1; }";
        let a = b.build("t", src, "gcc_asan", false, false).unwrap();
        let opts = MakefileSet::standard().build_options("gcc_asan", false).unwrap();
        let expected = crate::graph::decoded_key(
            crate::graph::compiled_key(
                fex_cc::source_digest("t", src),
                opts.backend.name,
                opts.backend.version,
                opts.opt_level,
                opts.asan,
                opts.debug,
            ),
            PassMask::all().bits(),
            CostModel::default().fingerprint(),
        );
        assert_eq!(a.digest, expected);
    }

    #[test]
    fn build_errors_carry_context() {
        let mut b = BuildSystem::new(MakefileSet::standard());
        let err = b.build("bad", "fn main( {", "gcc_native", false, false).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad"));
        assert!(msg.contains("gcc_native"));
    }
}
