//! The `fex` command-line tool (the paper's `fex.py`).

use std::process::ExitCode;

use fex_core::cli::{parse, Action, LabCommand, USAGE};
use fex_core::lab::{Comparison, RunStore};
use fex_core::{Fex, FexError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("fex: {e}");
            if matches!(e, FexError::Config(_)) {
                eprintln!("\n{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, FexError> {
    let action = parse(args)?;
    let mut fex = Fex::new();
    match action {
        Action::List => print!("{}", fex.list()),
        Action::SelfTest { name } => {
            fex.install("gcc-6.1")?;
            fex.install("clang-3.8")?;
            print!("{}", fex.selftest(&name)?);
        }
        Action::Report { journal: Some(path) } => {
            let jsonl = std::fs::read_to_string(&path)
                .map_err(|e| FexError::Data(format!("cannot read journal `{path}`: {e}")))?;
            let rendered = fex_core::journal::render_report(&jsonl);
            for warning in &rendered.warnings {
                eprintln!("fex: warning: {warning}");
            }
            if rendered.events == 0 {
                return Err(FexError::Data(format!(
                    "journal `{path}` contains no parseable events \
                     ({} malformed line(s) skipped)",
                    rendered.warnings.len()
                )));
            }
            print!("{}", rendered.report);
        }
        Action::Report { journal: None } => print!("{}", fex.report()),
        Action::Install { names } => {
            for name in names {
                fex.install(&name)?;
                println!("installed {name}");
            }
        }
        Action::Run(config) => {
            // The CLI is a fresh process each time, so perform the setup
            // stage implicitly (a long-lived embedding would call
            // `install` explicitly, as the library examples do).
            for script in fex_core::install::required_scripts(&config.name, &config.build_types) {
                fex.install(script)?;
            }
            let frame = fex.run(&config)?;
            println!("collected {} rows for `{}`:", frame.len(), config.name);
            print!("{}", frame.to_csv());
            for line in fex.log().iter().filter(|l| l.contains("stored run")) {
                eprintln!("{line}");
            }
            // Surface the run journal on the host filesystem so
            // `fex report <path>` works across processes.
            if let Some(jsonl) = fex.journal_jsonl(&config.name) {
                let dir = std::path::Path::new("target/fex-results");
                let _ = std::fs::create_dir_all(dir);
                let journal_path = dir.join(format!("{}.journal.jsonl", config.name));
                if std::fs::write(&journal_path, jsonl).is_ok() {
                    eprintln!("journal: {}", journal_path.display());
                }
                if let Some(metrics) = fex.metrics_json(&config.name) {
                    let _ =
                        std::fs::write(dir.join(format!("{}.metrics.json", config.name)), metrics);
                }
            }
        }
        Action::Plot { name, request } => {
            // Re-running the experiment in a fresh process would be
            // expensive; the plot action in this standalone binary renders
            // from the most recent run in this invocation, so guide users.
            match fex.plot(&name, request) {
                Ok(plot) => {
                    println!("{}", plot.to_ascii());
                    println!("--- svg ---");
                    println!("{}", plot.to_svg());
                }
                Err(e) => {
                    return Err(FexError::Data(format!(
                        "{e}; in this standalone binary, use `fex run` piped to a file, or \
                         drive the library API (see examples/) for run-then-plot workflows"
                    )));
                }
            }
        }
        Action::Lab { cmd, dir } => {
            let store = RunStore::open(&dir)?;
            match cmd {
                LabCommand::List { json } => {
                    let (entries, warnings) = store.scan();
                    for w in &warnings {
                        eprintln!("fex: warning: {w}");
                    }
                    if json {
                        print!("{}", store.render_list_json(&entries));
                    } else {
                        print!("{}", store.render_list(&entries));
                    }
                }
                LabCommand::Show { selector } => {
                    let entry = store.resolve(&selector)?;
                    print!("{}", store.render_show(&entry)?);
                }
                LabCommand::Gc { keep } => {
                    let removed = store.gc(keep)?;
                    println!("removed {removed} stored runs (kept {keep} per experiment key)");
                }
                LabCommand::Fsck { quarantine } => {
                    let report = if quarantine {
                        fex_core::lab::fsck::fsck(&store, true)?
                    } else {
                        fex_core::lab::fsck::check(&store)
                    };
                    print!("{}", report.render());
                    if !report.clean() && !quarantine {
                        eprintln!("fex: run `fex lab fsck --quarantine` to repair");
                        return Ok(ExitCode::FAILURE);
                    }
                }
            }
        }
        Action::Graph { dir } => {
            let graph = fex_core::ArtifactGraph::open(&dir)?;
            for w in graph.warnings() {
                eprintln!("fex: warning: {w}");
            }
            print!("{}", graph.render_stats());
        }
        Action::Fuzz { opts, regressions } => {
            let mut opts = opts;
            opts.break_mode = fex_core::BreakMode::from_env();
            let report = match regressions {
                Some(path) => {
                    fex_core::fuzz::replay_regressions(std::path::Path::new(&path), &opts)?
                }
                None => fex_core::fuzz::fuzz(&opts)?,
            };
            print!("{}", report.render());
            if !report.ok() {
                return Ok(ExitCode::FAILURE);
            }
        }
        Action::Serve { opts } => {
            let handle = fex_core::Server::start(opts)?;
            eprintln!("fex serve: listening on {}", handle.socket().display());
            eprintln!("fex serve: send {{\"op\": \"shutdown\"}} to drain and exit");
            let summary = handle.wait()?;
            println!(
                "served {} submissions ({} completed, {} store hits, {} evicted) \
                 across {} tenants",
                summary.submissions,
                summary.completed,
                summary.store_hits,
                summary.evictions,
                summary.tenants.len()
            );
            for (tenant, stats) in &summary.tenants {
                println!(
                    "  {tenant}: {} submissions, {} store hits, {} graph hits, {} graph misses",
                    stats.submissions, stats.store_hits, stats.graph_hits, stats.graph_misses
                );
            }
        }
        Action::Compare { baseline, candidate, dir, metric, svg } => {
            let store = RunStore::open(&dir)?;
            let (base_label, base_csv) = load_side(&store, &baseline)?;
            let (cand_label, cand_csv) = load_side(&store, &candidate)?;
            let base = fex_core::collect::DataFrame::from_csv(&base_csv)?;
            let cand = fex_core::collect::DataFrame::from_csv(&cand_csv)?;
            let cmp = Comparison::compare(&base, &cand, &metric, base_label, cand_label)?;
            print!("{}", cmp.to_table());
            let plot = cmp.to_plot();
            println!("\n{}", plot.to_ascii());
            let svg_path = svg.unwrap_or_else(|| "target/fex-results/compare.svg".to_string());
            if let Some(parent) = std::path::Path::new(&svg_path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            std::fs::write(&svg_path, plot.to_svg())
                .map_err(|e| FexError::Data(format!("cannot write `{svg_path}`: {e}")))?;
            eprintln!("comparison plot: {svg_path}");
            if cmp.has_regression() {
                eprintln!("fex: significant regression detected");
                return Ok(ExitCode::from(2));
            }
        }
        Action::Diag { journal, lab, format, config, jobs, rules, deny } => {
            let mut diag_config = match &config {
                // An explicit --config must exist; a missing default
                // fex.toml just means defaults.
                Some(path) => fex_core::DiagConfig::load(path)?.ok_or_else(|| {
                    FexError::Data(format!("cannot read config `{path}`: no such file"))
                })?,
                None => fex_core::DiagConfig::load("fex.toml")?.unwrap_or_default(),
            };
            for id in rules.iter().chain(&deny) {
                if !fex_core::diag::rules::known_rule(id) {
                    return Err(FexError::Config(format!("unknown diag rule `{id}`")));
                }
            }
            if !rules.is_empty() {
                diag_config.allow = Some(rules);
            }
            diag_config.deny.extend(deny);
            let ctx = fex_core::DiagCtx {
                journal: journal.as_deref().map(fex_core::diag::JournalSource::load).transpose()?,
                store: lab.as_deref().map(fex_core::diag::StoreSource::open).transpose()?,
                config: diag_config,
            };
            if let Some(store) = &ctx.store {
                for w in &store.index_warnings {
                    eprintln!("fex: warning: {w}");
                }
            }
            let report = fex_core::diag::run_diag(&ctx, jobs);
            print!("{}", fex_core::diag::output::render(&report, format));
            if report.worst() == Some(fex_core::Severity::Error) {
                eprintln!(
                    "fex: {} error-severity finding(s)",
                    report.count(fex_core::Severity::Error)
                );
                return Ok(ExitCode::from(2));
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Resolves one side of a comparison: an on-disk CSV path wins, anything
/// else is a store selector (`latest`, `prev`, or a run-id prefix).
fn load_side(store: &RunStore, selector: &str) -> Result<(String, String), FexError> {
    let path = std::path::Path::new(selector);
    if path.is_file() {
        let csv = std::fs::read_to_string(path)
            .map_err(|e| FexError::Data(format!("cannot read `{selector}`: {e}")))?;
        return Ok((selector.to_string(), csv));
    }
    let entry = store.resolve(selector)?;
    let short = entry.run_id.trim_start_matches("fex256:");
    let label = format!("{selector} ({}…)", &short[..12.min(short.len())]);
    Ok((label, store.results_csv(&entry)?))
}
