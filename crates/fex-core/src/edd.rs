//! Evaluation-Driven Development — the paper's §VI future-work item
//! ("we would like to combine FEX with a continuous integration system
//! (e.g., Jenkins) to facilitate Evaluation-Driven Development").
//!
//! A *baseline* is a stored result frame; a [`Gate`] bounds how much a
//! metric may regress relative to it. [`check`] compares a fresh frame
//! against the baseline group-by-group and produces a CI-ready verdict,
//! so "did this commit slow anything down by more than 5%?" becomes a
//! single call (and `Fex::save_baseline` / `Fex::edd_check` wire it into
//! the container-persisted workflow).

use crate::collect::{stats, DataFrame};
use crate::error::{FexError, Result};
use crate::resilience::FailureReport;

/// A regression gate for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Metric column (e.g. `time`, `maxrss_bytes`).
    pub metric: String,
    /// Maximum tolerated ratio of `current / baseline` (e.g. `1.05` for
    /// "at most 5% slower").
    pub max_ratio: f64,
}

impl Gate {
    /// Creates a gate.
    pub fn new(metric: impl Into<String>, max_ratio: f64) -> Self {
        Gate { metric: metric.into(), max_ratio }
    }
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The group key (joined key-column values).
    pub group: String,
    /// The violated metric.
    pub metric: String,
    /// Baseline mean.
    pub baseline: f64,
    /// Current mean.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// The gate's bound.
    pub max_ratio: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {:.4} -> {:.4} ({:.2}x > {:.2}x allowed)",
            self.group, self.metric, self.baseline, self.current, self.ratio, self.max_ratio
        )
    }
}

/// A gate-check verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct EddReport {
    /// Gate violations, empty when the check passes.
    pub violations: Vec<Violation>,
    /// Groups compared.
    pub groups_checked: usize,
}

impl EddReport {
    /// Whether every gate held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// A CI-log style summary.
    pub fn summary(&self) -> String {
        if self.passed() {
            format!("EDD: OK ({} groups within gates)", self.groups_checked)
        } else {
            let mut s = format!(
                "EDD: FAILED ({} violations in {} groups)\n",
                self.violations.len(),
                self.groups_checked
            );
            for v in &self.violations {
                s.push_str(&format!("  {v}\n"));
            }
            s
        }
    }
}

/// Compares `current` against `baseline`: for every distinct combination
/// of `keys`, the mean of each gated metric may grow by at most the
/// gate's ratio.
///
/// Groups present in only one frame are ignored (new benchmarks don't
/// fail the gate; removed ones stop being checked).
///
/// # Errors
///
/// [`FexError::Data`] if a key or metric column is missing from either
/// frame.
pub fn check(
    baseline: &DataFrame,
    current: &DataFrame,
    keys: &[&str],
    gates: &[Gate],
) -> Result<EddReport> {
    let mut violations = Vec::new();
    let mut groups_checked = 0usize;
    for gate in gates {
        let base = baseline.group_agg(keys, &gate.metric, stats::mean)?;
        let cur = current.group_agg(keys, &gate.metric, stats::mean)?;
        let key_of = |row: &[crate::collect::Value]| {
            row[..keys.len()].iter().map(|v| v.to_cell_string()).collect::<Vec<_>>().join("/")
        };
        let base_map: std::collections::BTreeMap<String, f64> =
            base.iter().map(|r| (key_of(r), r[keys.len()].as_num().unwrap_or(0.0))).collect();
        for row in cur.iter() {
            let group = key_of(row);
            let Some(&b) = base_map.get(&group) else { continue };
            groups_checked += 1;
            let c = row[keys.len()].as_num().unwrap_or(0.0);
            if b <= 0.0 {
                continue;
            }
            let ratio = c / b;
            if ratio > gate.max_ratio {
                violations.push(Violation {
                    group,
                    metric: gate.metric.clone(),
                    baseline: b,
                    current: c,
                    ratio,
                    max_ratio: gate.max_ratio,
                });
            }
        }
    }
    if groups_checked == 0 {
        return Err(FexError::Data(
            "edd check compared zero groups; do baseline and current share keys?".into(),
        ));
    }
    Ok(EddReport { violations, groups_checked })
}

/// A flakiness gate for CI: bounds how much retrying and quarantining an
/// experiment may need before its numbers stop being trustworthy.
///
/// Performance results obtained through heavy retrying are suspect even
/// when every run eventually succeeded — the same machine conditions that
/// made runs fail also perturb the measurements that passed.
#[derive(Debug, Clone, PartialEq)]
pub struct FlakinessGate {
    /// Maximum tolerated retry rate (extra attempts per driven run),
    /// e.g. `0.1` for "at most one retry per ten runs".
    pub max_retry_rate: f64,
    /// Maximum number of quarantined benchmarks (usually 0 for CI).
    pub max_quarantined: usize,
}

impl Default for FlakinessGate {
    /// Strict CI defaults: no retries tolerated, no quarantines.
    fn default() -> Self {
        FlakinessGate { max_retry_rate: 0.0, max_quarantined: 0 }
    }
}

impl FlakinessGate {
    /// Creates a gate.
    pub fn new(max_retry_rate: f64, max_quarantined: usize) -> Self {
        FlakinessGate { max_retry_rate, max_quarantined }
    }
}

/// Checks an experiment's [`FailureReport`] against a [`FlakinessGate`],
/// reusing the [`EddReport`] verdict machinery so CI treats flakiness
/// like any other regression.
pub fn check_flakiness(report: &FailureReport, gate: &FlakinessGate) -> EddReport {
    let mut violations = Vec::new();
    let retry_rate = report.retry_rate();
    if retry_rate > gate.max_retry_rate {
        violations.push(Violation {
            group: "experiment".into(),
            metric: "retry_rate".into(),
            baseline: gate.max_retry_rate,
            current: retry_rate,
            ratio: if gate.max_retry_rate > 0.0 {
                retry_rate / gate.max_retry_rate
            } else {
                f64::INFINITY
            },
            max_ratio: 1.0,
        });
    }
    let quarantined = report.quarantined_benchmarks().len();
    if quarantined > gate.max_quarantined {
        violations.push(Violation {
            group: "experiment".into(),
            metric: "quarantined_benchmarks".into(),
            baseline: gate.max_quarantined as f64,
            current: quarantined as f64,
            ratio: if gate.max_quarantined > 0 {
                quarantined as f64 / gate.max_quarantined as f64
            } else {
                f64::INFINITY
            },
            max_ratio: 1.0,
        });
    }
    EddReport { violations, groups_checked: 2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(rows: &[(&str, f64)]) -> DataFrame {
        let mut df = DataFrame::new(vec!["benchmark", "time"]);
        for (b, t) in rows {
            df.push(vec![(*b).into(), (*t).into()]);
        }
        df
    }

    #[test]
    fn passes_within_tolerance() {
        let base = frame(&[("fft", 1.0), ("lu", 2.0)]);
        let cur = frame(&[("fft", 1.03), ("lu", 1.9)]);
        let r = check(&base, &cur, &["benchmark"], &[Gate::new("time", 1.05)]).unwrap();
        assert!(r.passed(), "{}", r.summary());
        assert_eq!(r.groups_checked, 2);
    }

    #[test]
    fn flags_regressions_with_context() {
        let base = frame(&[("fft", 1.0)]);
        let cur = frame(&[("fft", 1.25)]);
        let r = check(&base, &cur, &["benchmark"], &[Gate::new("time", 1.05)]).unwrap();
        assert!(!r.passed());
        let v = &r.violations[0];
        assert_eq!(v.group, "fft");
        assert!((v.ratio - 1.25).abs() < 1e-9);
        assert!(r.summary().contains("FAILED"));
        assert!(v.to_string().contains("fft"));
    }

    #[test]
    fn new_and_removed_groups_are_ignored() {
        let base = frame(&[("fft", 1.0), ("gone", 1.0)]);
        let cur = frame(&[("fft", 1.0), ("brand_new", 9.0)]);
        let r = check(&base, &cur, &["benchmark"], &[Gate::new("time", 1.05)]).unwrap();
        assert!(r.passed());
        assert_eq!(r.groups_checked, 1);
    }

    #[test]
    fn disjoint_frames_are_an_error() {
        let base = frame(&[("a", 1.0)]);
        let cur = frame(&[("b", 1.0)]);
        assert!(check(&base, &cur, &["benchmark"], &[Gate::new("time", 1.05)]).is_err());
    }

    #[test]
    fn flakiness_gate_bounds_retry_rate_and_quarantines() {
        use crate::resilience::{FailureRecord, RunOutcome};

        // Clean report passes the strict default gate.
        let mut report = FailureReport::default();
        report.note_run(1, 0);
        assert!(check_flakiness(&report, &FlakinessGate::default()).passed());

        // One retry per run: rate 1.0 fails the default gate but passes a
        // lenient one.
        let mut flaky = FailureReport::default();
        flaky.note_run(2, 1_000_000);
        let r = check_flakiness(&flaky, &FlakinessGate::default());
        assert!(!r.passed());
        assert_eq!(r.violations[0].metric, "retry_rate");
        assert!(check_flakiness(&flaky, &FlakinessGate::new(1.5, 0)).passed());

        // A quarantined benchmark trips the quarantine bound.
        let mut quarantined = FailureReport::default();
        quarantined.note_run(3, 3_000_000);
        quarantined.push(FailureRecord {
            benchmark: "fft".into(),
            build_type: "gcc_native".into(),
            threads: 1,
            rep: 0,
            error: "vm trap: injected fault (attempt 2)".into(),
            attempts: 3,
            outcome: RunOutcome::Quarantined,
        });
        let r = check_flakiness(&quarantined, &FlakinessGate::new(10.0, 0));
        assert!(!r.passed());
        assert_eq!(r.violations[0].metric, "quarantined_benchmarks");
        assert!(r.summary().contains("FAILED"));
    }

    #[test]
    fn multiple_gates_accumulate() {
        let mut base = DataFrame::new(vec!["benchmark", "time", "maxrss_bytes"]);
        base.push(vec!["x".into(), 1.0.into(), 100.0.into()]);
        let mut cur = DataFrame::new(vec!["benchmark", "time", "maxrss_bytes"]);
        cur.push(vec!["x".into(), 2.0.into(), 300.0.into()]);
        let r = check(
            &base,
            &cur,
            &["benchmark"],
            &[Gate::new("time", 1.1), Gate::new("maxrss_bytes", 1.5)],
        )
        .unwrap();
        assert_eq!(r.violations.len(), 2);
    }
}
