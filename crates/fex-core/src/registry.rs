//! The framework's experiment registry — the data behind Table I.

use fex_vm::MeasureTool;

/// How an experiment is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentKind {
    /// Benchmark suite under the Fig 4 loop.
    SuitePerformance,
    /// Suite with an input-size sweep ([`VariableInputRunner`]).
    ///
    /// [`VariableInputRunner`]: crate::runner::VariableInputRunner
    VariableInput,
    /// Server throughput-latency simulation.
    Server,
    /// RIPE security testbed.
    Security,
}

/// A registered experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentEntry {
    /// `-n` name.
    pub name: &'static str,
    /// Description for `fex list`.
    pub description: &'static str,
    /// Runner kind.
    pub kind: ExperimentKind,
}

/// All registered experiments.
pub fn experiments() -> Vec<ExperimentEntry> {
    use ExperimentKind::*;
    let e = |name, description, kind| ExperimentEntry { name, description, kind };
    vec![
        e("phoenix", "Phoenix suite performance/memory overheads", SuitePerformance),
        e("splash", "SPLASH-3 suite performance overheads", SuitePerformance),
        e("parsec", "PARSEC subset performance overheads", SuitePerformance),
        e("micro", "microbenchmarks for debugging", SuitePerformance),
        e("phoenix_var", "Phoenix with variable input sizes", VariableInput),
        e("parsec_var", "PARSEC with variable input sizes", VariableInput),
        e("nginx", "Nginx throughput-latency (2K static page, 1Gb link)", Server),
        e("apache", "Apache throughput-latency", Server),
        e("memcached", "Memcached throughput-latency (get/set mix)", Server),
        e("ripe", "RIPE security testbed (832 attacks)", Security),
    ]
}

/// Looks an experiment up by name.
pub fn experiment(name: &str) -> Option<ExperimentEntry> {
    experiments().into_iter().find(|e| e.name == name)
}

/// Renders Table I: the currently supported experiments.
pub fn table_one() -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let suites: Vec<&str> = fex_suites::all_suites()
        .iter()
        .map(|su| if su.proprietary { "SPEC CPU2006*" } else { su.name })
        .map(|n| match n {
            "phoenix" => "Phoenix",
            "splash" => "SPLASH",
            "parsec" => "PARSEC",
            "micro" => "micro",
            other => other,
        })
        .collect();
    let _ = writeln!(s, "- Benchmark suites   {}", suites.join(", "));
    let _ = writeln!(s, "- Add. benchmarks    Apache, Nginx, Memcached, RIPE");
    let _ = writeln!(s, "- Compilers          GCC, Clang/LLVM");
    let _ = writeln!(s, "- Types              AddressSanitizer (as example)");
    let _ =
        writeln!(s, "- Experiments        Performance and memory overheads, security evaluation");
    let tools: Vec<&str> = MeasureTool::all().iter().map(|t| t.name()).collect();
    let _ = writeln!(s, "- Tools              {}", tools.join(", "));
    let _ = writeln!(
        s,
        "- Plots              Lineplot, regular barplot, stacked barplot, grouped barplot, stacked-grouped barplot"
    );
    let _ = writeln!(s, "* Not open-sourced as part of FEX due to proprietary license.");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_papers_experiments() {
        let names: Vec<&str> = experiments().iter().map(|e| e.name).collect();
        for required in ["phoenix", "splash", "parsec", "nginx", "apache", "memcached", "ripe"] {
            assert!(names.contains(&required), "missing {required}");
        }
        assert!(experiment("ripe").is_some());
        assert!(experiment("nope").is_none());
    }

    #[test]
    fn table_one_lists_all_rows() {
        let t = table_one();
        for needle in [
            "Phoenix",
            "SPLASH",
            "PARSEC",
            "SPEC CPU2006*",
            "Nginx",
            "RIPE",
            "GCC",
            "Clang",
            "AddressSanitizer",
            "perf-stat",
            "stacked-grouped barplot",
            "proprietary license",
        ] {
            assert!(t.contains(needle), "table I missing `{needle}`:\n{t}");
        }
    }
}
