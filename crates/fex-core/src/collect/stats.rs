//! Statistics for the collect stage.
//!
//! The paper's Fex ships only basic statistics (mean, standard deviation);
//! this module additionally provides the confidence intervals and Welch's
//! t-test that back the adaptive repetition controller and the
//! `fex compare` regression gate. Every function here is total: degenerate
//! inputs (empty or single-sample groups) yield 0 or a non-significant
//! verdict, never NaN.

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n-1 denominator; 0 for fewer than 2 points).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Median (0 for empty input).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in measurements"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Minimum (0 for empty input).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min).min(f64::INFINITY).pipe_finite()
}

/// Maximum (0 for empty input).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max).pipe_finite()
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Geometric mean (0 for empty input; inputs must be positive).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Half-width of the 95% confidence interval of the mean (normal
/// approximation; 0 for fewer than 2 points).
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * stddev(xs) / (xs.len() as f64).sqrt()
}

/// Result of Welch's unequal-variance t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub dof: f64,
    /// Whether the difference is significant at the 5% level (two-sided,
    /// normal-approximation critical value for the computed dof).
    pub significant_05: bool,
}

/// Welch's t-test for the difference of two sample means.
///
/// Degenerate inputs never panic: with fewer than 2 points in either
/// group there is no variance estimate, so the result is `t = 0`,
/// `dof = 0`, not significant — the caller should treat it as
/// inconclusive. When both groups have zero variance the test collapses
/// to an exact comparison of the (constant) means.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> WelchResult {
    if a.len() < 2 || b.len() < 2 {
        return WelchResult { t: 0.0, dof: 0.0, significant_05: false };
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (stddev(a).powi(2), stddev(b).powi(2));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        // Both groups are constant: any difference of means is exact.
        let differs = ma != mb;
        let t = if differs { (ma - mb).signum() * f64::INFINITY } else { 0.0 };
        return WelchResult { t, dof: na + nb - 2.0, significant_05: differs };
    }
    let t = (ma - mb) / se2.sqrt();
    let dof = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    // Two-sided 5% critical values of the t distribution, coarse table.
    let crit = t_critical_05(dof);
    WelchResult { t, dof, significant_05: t.abs() > crit }
}

fn t_critical_05(dof: f64) -> f64 {
    const TABLE: [(f64, f64); 10] = [
        (1.0, 12.706),
        (2.0, 4.303),
        (3.0, 3.182),
        (4.0, 2.776),
        (5.0, 2.571),
        (7.0, 2.365),
        (10.0, 2.228),
        (15.0, 2.131),
        (30.0, 2.042),
        (120.0, 1.980),
    ];
    for (d, c) in TABLE {
        if dof <= d {
            return c;
        }
    }
    1.96
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((stddev(&xs) - 1.2909944).abs() < 1e-6);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 4.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(ci95_half_width(&[1.0]), 0.0);
    }

    #[test]
    fn geomean_of_ratios() {
        let xs = [2.0, 0.5];
        assert!((geomean(&xs) - 1.0).abs() < 1e-12);
        let xs = [4.0, 1.0];
        assert!((geomean(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welch_detects_clear_separation() {
        let a = [10.0, 10.1, 9.9, 10.05, 9.95];
        let b = [12.0, 12.1, 11.9, 12.05, 11.95];
        let r = welch_t_test(&a, &b);
        assert!(r.significant_05, "{r:?}");
        assert!(r.t < 0.0);
    }

    #[test]
    fn welch_accepts_identical_samples() {
        let a = [5.0, 5.1, 4.9, 5.0];
        let r = welch_t_test(&a, &a);
        assert!(!r.significant_05, "{r:?}");
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = [1.0, 2.0, 3.0];
        let many: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64).collect();
        assert!(ci95_half_width(&many) < ci95_half_width(&few));
    }

    #[test]
    fn welch_is_total_on_degenerate_groups() {
        // Under 2 samples per group: no variance estimate, never NaN,
        // never significant.
        for (a, b) in [(&[][..], &[][..]), (&[1.0][..], &[2.0][..]), (&[1.0, 2.0][..], &[9.0][..])]
        {
            let r = welch_t_test(a, b);
            assert_eq!(r, WelchResult { t: 0.0, dof: 0.0, significant_05: false }, "{a:?} {b:?}");
            assert!(!r.t.is_nan() && !r.dof.is_nan());
        }
    }

    #[test]
    fn welch_on_zero_variance_groups_compares_means_exactly() {
        // Equal constants: no difference.
        let same = welch_t_test(&[5.0, 5.0, 5.0], &[5.0, 5.0]);
        assert!(!same.significant_05);
        assert_eq!(same.t, 0.0);
        // Different constants: the difference is exact, hence significant.
        let diff = welch_t_test(&[5.0, 5.0, 5.0], &[6.0, 6.0]);
        assert!(diff.significant_05, "{diff:?}");
        assert_eq!(diff.t, f64::NEG_INFINITY);
        assert!(!diff.dof.is_nan());
    }

    #[test]
    fn stddev_and_ci_are_zero_below_two_samples() {
        assert_eq!(stddev(&[7.0]), 0.0);
        assert_eq!(ci95_half_width(&[]), 0.0);
        assert_eq!(ci95_half_width(&[7.0]), 0.0);
        assert!(!stddev(&[7.0]).is_nan());
    }
}
