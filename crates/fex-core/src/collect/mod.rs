//! The collect subsystem: turn run results into tabular data.
//!
//! The paper's collect step "parses the log, extracts the measurement
//! results, processes them in a user-specified way, and stores into a CSV
//! table"; [`Collector`] does exactly that over the VM's structured run
//! results, and [`DataFrame`] plays the role of the pandas table.

pub mod frame;
pub mod stats;

pub use frame::{DataFrame, Value};

use fex_vm::{MeasureTool, Measurement, RunResult};

/// Accumulates measurement rows during an experiment.
#[derive(Debug)]
pub struct Collector {
    tool: MeasureTool,
    frame: DataFrame,
}

impl Collector {
    /// Standard experiment columns preceding the metric columns.
    pub const KEY_COLUMNS: [&'static str; 6] =
        ["suite", "benchmark", "type", "threads", "input", "rep"];

    /// Creates a collector for one measurement tool.
    pub fn new(tool: MeasureTool) -> Self {
        let mut columns: Vec<String> = Self::KEY_COLUMNS.iter().map(|s| s.to_string()).collect();
        // Metric columns are fixed per tool so every row has the same
        // shape; probe them from a default measurement.
        columns.extend(metric_names(tool));
        Collector { tool, frame: DataFrame::new(columns) }
    }

    /// The tool this collector extracts with.
    pub fn tool(&self) -> MeasureTool {
        self.tool
    }

    /// Records one run.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        suite: &str,
        benchmark: &str,
        build_type: &str,
        threads: usize,
        input: &str,
        rep: usize,
        run: &RunResult,
    ) {
        let m = Measurement::extract(self.tool, run);
        let mut row: Vec<Value> = vec![
            suite.into(),
            benchmark.into(),
            build_type.into(),
            (threads as i64).into(),
            input.into(),
            (rep as i64).into(),
        ];
        for name in metric_names(self.tool) {
            row.push(Value::Num(m.get(&name).unwrap_or(0.0)));
        }
        self.frame.push(row);
    }

    /// Consumes the collector, returning the assembled frame.
    pub fn into_frame(self) -> DataFrame {
        self.frame
    }

    /// Borrowed view of the frame so far.
    pub fn frame(&self) -> &DataFrame {
        &self.frame
    }

    /// The value of metric `name` in the most recently recorded row, if
    /// any — the adaptive repetition controller reads its sample here
    /// right after [`record`](Self::record).
    pub fn last_metric(&self, name: &str) -> Option<f64> {
        let i = self.frame.col(name).ok()?;
        self.frame.iter().last().and_then(|r| r[i].as_num())
    }
}

/// The canonical scalar sample of one run: the `time` metric as the
/// collector would record it (every tool reports `time`; a missing value
/// records as 0, exactly like [`Collector::record`]).
///
/// Both the sequential runner and the parallel scheduler's adaptive
/// controller derive convergence decisions from this one function, which
/// keeps their rep counts — and therefore their CSVs — identical.
pub fn run_sample(tool: MeasureTool, run: &RunResult) -> f64 {
    Measurement::extract(tool, run).get("time").unwrap_or(0.0)
}

/// Per-group summary statistics of `metric`: one row per distinct key
/// combination (first-appearance order, like
/// [`DataFrame::group_agg`]) with `n`, `mean`, `stddev`, and `ci95`
/// (half-width) columns appended after the keys.
///
/// # Errors
///
/// [`FexError`](crate::FexError) on unknown columns or non-numeric
/// metric cells.
pub fn summarize(df: &DataFrame, keys: &[&str], metric: &str) -> crate::Result<DataFrame> {
    let key_idx: Vec<usize> = keys.iter().map(|k| df.col(k)).collect::<crate::Result<_>>()?;
    let vi = df.col(metric)?;
    let mut groups: std::collections::BTreeMap<Vec<String>, Vec<f64>> =
        std::collections::BTreeMap::new();
    let mut order: Vec<Vec<String>> = Vec::new();
    for r in df.iter() {
        let key: Vec<String> = key_idx.iter().map(|i| r[*i].to_cell_string()).collect();
        let v = r[vi]
            .as_num()
            .ok_or_else(|| crate::FexError::Data(format!("non-numeric `{metric}`")))?;
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(v);
    }
    let columns: Vec<String> = keys
        .iter()
        .map(|k| k.to_string())
        .chain(["n".into(), "mean".into(), "stddev".into(), "ci95".into()])
        .collect();
    let mut out = DataFrame::new(columns);
    for key in order {
        let vals = &groups[&key];
        let mut row: Vec<Value> = key.into_iter().map(Value::Str).collect();
        row.push(Value::Num(vals.len() as f64));
        row.push(Value::Num(stats::mean(vals)));
        row.push(Value::Num(stats::stddev(vals)));
        row.push(Value::Num(stats::ci95_half_width(vals)));
        out.push(row);
    }
    Ok(out)
}

fn metric_names(tool: MeasureTool) -> Vec<String> {
    match tool {
        MeasureTool::PerfStat => {
            ["instructions", "cycles", "ipc", "branches", "branch_misses", "calls", "time"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        }
        MeasureTool::PerfStatMemory => [
            "loads",
            "stores",
            "l1_accesses",
            "l1_misses",
            "l2_misses",
            "llc_misses",
            "l1_miss_ratio",
            "llc_miss_ratio",
            "time",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        MeasureTool::Time => {
            ["time", "maxrss_bytes", "heap_allocs", "heap_payload_bytes", "heap_redzone_bytes"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fex_cc::{compile, BuildOptions};
    use fex_vm::{Machine, MachineConfig};

    fn run_trivial() -> RunResult {
        let p = compile("fn main() -> int { return 0; }", &BuildOptions::gcc()).unwrap();
        Machine::new(MachineConfig::default()).run(&p, &[]).unwrap()
    }

    #[test]
    fn collector_builds_well_formed_frames() {
        let mut c = Collector::new(MeasureTool::PerfStat);
        let run = run_trivial();
        c.record("micro", "noop", "gcc_native", 1, "test", 0, &run);
        c.record("micro", "noop", "gcc_native", 1, "test", 1, &run);
        let df = c.into_frame();
        assert_eq!(df.len(), 2);
        assert!(df.columns().iter().any(|c| c == "time"));
        assert!(df.columns().iter().any(|c| c == "instructions"));
        // Keys come first.
        assert_eq!(&df.columns()[..6], &Collector::KEY_COLUMNS);
    }

    #[test]
    fn last_metric_tracks_the_latest_row() {
        let mut c = Collector::new(MeasureTool::PerfStat);
        assert_eq!(c.last_metric("time"), None, "empty collector has no sample");
        let run = run_trivial();
        c.record("micro", "noop", "gcc_native", 1, "test", 0, &run);
        let t = c.last_metric("time").expect("time recorded");
        assert_eq!(t, run_sample(MeasureTool::PerfStat, &run));
        assert_eq!(c.last_metric("no_such_metric"), None);
    }

    #[test]
    fn summarize_appends_group_statistics() {
        let mut df = DataFrame::new(vec!["bench", "type", "time"]);
        for (b, t, v) in
            [("a", "gcc", 1.0), ("a", "gcc", 3.0), ("b", "gcc", 5.0), ("a", "clang", 2.0)]
        {
            df.push(vec![b.into(), t.into(), Value::Num(v)]);
        }
        let s = summarize(&df, &["bench", "type"], "time").unwrap();
        assert_eq!(s.columns(), &["bench", "type", "n", "mean", "stddev", "ci95"]);
        assert_eq!(s.len(), 3, "one row per distinct group");
        let first: Vec<Value> = s.iter().next().unwrap().to_vec();
        assert_eq!(first[2].as_num(), Some(2.0));
        assert_eq!(first[3].as_num(), Some(2.0));
        assert!(summarize(&df, &["bench"], "no_such").is_err());
    }

    #[test]
    fn tools_have_distinct_metric_sets() {
        let perf = Collector::new(MeasureTool::PerfStat);
        let mem = Collector::new(MeasureTool::PerfStatMemory);
        let time = Collector::new(MeasureTool::Time);
        assert!(perf.frame().columns().iter().any(|c| c == "ipc"));
        assert!(mem.frame().columns().iter().any(|c| c == "llc_misses"));
        assert!(time.frame().columns().iter().any(|c| c == "maxrss_bytes"));
    }
}
