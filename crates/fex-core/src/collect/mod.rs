//! The collect subsystem: turn run results into tabular data.
//!
//! The paper's collect step "parses the log, extracts the measurement
//! results, processes them in a user-specified way, and stores into a CSV
//! table"; [`Collector`] does exactly that over the VM's structured run
//! results, and [`DataFrame`] plays the role of the pandas table.

pub mod frame;
pub mod stats;

pub use frame::{DataFrame, Value};

use fex_vm::{MeasureTool, Measurement, RunResult};

/// Accumulates measurement rows during an experiment.
#[derive(Debug)]
pub struct Collector {
    tool: MeasureTool,
    frame: DataFrame,
}

impl Collector {
    /// Standard experiment columns preceding the metric columns.
    pub const KEY_COLUMNS: [&'static str; 6] =
        ["suite", "benchmark", "type", "threads", "input", "rep"];

    /// Creates a collector for one measurement tool.
    pub fn new(tool: MeasureTool) -> Self {
        let mut columns: Vec<String> = Self::KEY_COLUMNS.iter().map(|s| s.to_string()).collect();
        // Metric columns are fixed per tool so every row has the same
        // shape; probe them from a default measurement.
        columns.extend(metric_names(tool));
        Collector { tool, frame: DataFrame::new(columns) }
    }

    /// The tool this collector extracts with.
    pub fn tool(&self) -> MeasureTool {
        self.tool
    }

    /// Records one run.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        suite: &str,
        benchmark: &str,
        build_type: &str,
        threads: usize,
        input: &str,
        rep: usize,
        run: &RunResult,
    ) {
        let m = Measurement::extract(self.tool, run);
        let mut row: Vec<Value> = vec![
            suite.into(),
            benchmark.into(),
            build_type.into(),
            (threads as i64).into(),
            input.into(),
            (rep as i64).into(),
        ];
        for name in metric_names(self.tool) {
            row.push(Value::Num(m.get(&name).unwrap_or(0.0)));
        }
        self.frame.push(row);
    }

    /// Consumes the collector, returning the assembled frame.
    pub fn into_frame(self) -> DataFrame {
        self.frame
    }

    /// Borrowed view of the frame so far.
    pub fn frame(&self) -> &DataFrame {
        &self.frame
    }
}

fn metric_names(tool: MeasureTool) -> Vec<String> {
    match tool {
        MeasureTool::PerfStat => {
            ["instructions", "cycles", "ipc", "branches", "branch_misses", "calls", "time"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        }
        MeasureTool::PerfStatMemory => [
            "loads",
            "stores",
            "l1_accesses",
            "l1_misses",
            "l2_misses",
            "llc_misses",
            "l1_miss_ratio",
            "llc_miss_ratio",
            "time",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        MeasureTool::Time => {
            ["time", "maxrss_bytes", "heap_allocs", "heap_payload_bytes", "heap_redzone_bytes"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fex_cc::{compile, BuildOptions};
    use fex_vm::{Machine, MachineConfig};

    fn run_trivial() -> RunResult {
        let p = compile("fn main() -> int { return 0; }", &BuildOptions::gcc()).unwrap();
        Machine::new(MachineConfig::default()).run(&p, &[]).unwrap()
    }

    #[test]
    fn collector_builds_well_formed_frames() {
        let mut c = Collector::new(MeasureTool::PerfStat);
        let run = run_trivial();
        c.record("micro", "noop", "gcc_native", 1, "test", 0, &run);
        c.record("micro", "noop", "gcc_native", 1, "test", 1, &run);
        let df = c.into_frame();
        assert_eq!(df.len(), 2);
        assert!(df.columns().iter().any(|c| c == "time"));
        assert!(df.columns().iter().any(|c| c == "instructions"));
        // Keys come first.
        assert_eq!(&df.columns()[..6], &Collector::KEY_COLUMNS);
    }

    #[test]
    fn tools_have_distinct_metric_sets() {
        let perf = Collector::new(MeasureTool::PerfStat);
        let mem = Collector::new(MeasureTool::PerfStatMemory);
        let time = Collector::new(MeasureTool::Time);
        assert!(perf.frame().columns().iter().any(|c| c == "ipc"));
        assert!(mem.frame().columns().iter().any(|c| c == "llc_misses"));
        assert!(time.frame().columns().iter().any(|c| c == "maxrss_bytes"));
    }
}
