//! A small column-typed data frame — the framework's pandas substitute.
//!
//! Holds the rows the collect stage extracts from runs, supports group-by
//! aggregation and pivoting for the plot stage, and round-trips through
//! CSV (the artifact the paper stores per experiment).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{FexError, Result};

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string cell.
    Str(String),
    /// A numeric cell.
    Num(f64),
}

impl Value {
    /// Numeric view; `None` for strings.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// String view. Numbers use shortest round-trip formatting so CSV
    /// persistence is lossless (EDD baselines depend on this).
    pub fn to_cell_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v}")
                }
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Num(v as f64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_cell_string())
    }
}

/// The data frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl DataFrame {
    /// Creates an empty frame with the given columns.
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Self {
        DataFrame { columns: columns.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] if the column does not exist.
    pub fn col(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| FexError::Data(format!("no column `{name}`")))
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the columns — pushing rows is
    /// always framework code, so a mismatch is a bug, not input error.
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Iterates rows.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// The values of one column.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] if the column does not exist.
    pub fn column_values(&self, name: &str) -> Result<Vec<&Value>> {
        let i = self.col(name)?;
        Ok(self.rows.iter().map(|r| &r[i]).collect())
    }

    /// Distinct string values of a column, in first-appearance order.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] if the column does not exist.
    pub fn distinct(&self, name: &str) -> Result<Vec<String>> {
        let i = self.col(name)?;
        let mut seen = Vec::new();
        for r in &self.rows {
            let s = r[i].to_cell_string();
            if !seen.contains(&s) {
                seen.push(s);
            }
        }
        Ok(seen)
    }

    /// Keeps only rows where `column == value` (string comparison).
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] if the column does not exist.
    pub fn filter_eq(&self, column: &str, value: &str) -> Result<DataFrame> {
        let i = self.col(column)?;
        let rows = self.rows.iter().filter(|r| r[i].to_cell_string() == value).cloned().collect();
        Ok(DataFrame { columns: self.columns.clone(), rows })
    }

    /// Groups by the given key columns and aggregates `value_column` with
    /// `agg` (applied to the numeric values of each group). The result has
    /// the key columns plus one `value_column` column.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] for unknown columns or non-numeric values.
    pub fn group_agg(
        &self,
        keys: &[&str],
        value_column: &str,
        agg: fn(&[f64]) -> f64,
    ) -> Result<DataFrame> {
        let key_idx: Vec<usize> = keys.iter().map(|k| self.col(k)).collect::<Result<_>>()?;
        let vi = self.col(value_column)?;
        let mut groups: BTreeMap<Vec<String>, Vec<f64>> = BTreeMap::new();
        let mut order: Vec<Vec<String>> = Vec::new();
        for r in &self.rows {
            let key: Vec<String> = key_idx.iter().map(|i| r[*i].to_cell_string()).collect();
            let v = r[vi]
                .as_num()
                .ok_or_else(|| FexError::Data(format!("non-numeric `{value_column}`")))?;
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(v);
        }
        let mut out = DataFrame::new(
            keys.iter().map(|k| k.to_string()).chain([value_column.to_string()]).collect(),
        );
        for key in order {
            let vals = &groups[&key];
            let mut row: Vec<Value> = key.into_iter().map(Value::Str).collect();
            row.push(Value::Num(agg(vals)));
            out.push(row);
        }
        Ok(out)
    }

    /// Serialises to CSV (header + rows; commas and quotes escaped).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.columns.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(","));
        s.push('\n');
        for r in &self.rows {
            s.push_str(
                &r.iter().map(|v| csv_escape(&v.to_cell_string())).collect::<Vec<_>>().join(","),
            );
            s.push('\n');
        }
        s
    }

    /// Parses CSV produced by [`DataFrame::to_csv`]. Numeric-looking cells
    /// become numbers.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] on ragged rows or missing header.
    pub fn from_csv(text: &str) -> Result<DataFrame> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| FexError::Data("empty csv".into()))?;
        let columns = parse_csv_line(header);
        let mut df = DataFrame::new(columns.clone());
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let cells = parse_csv_line(line);
            if cells.len() != columns.len() {
                return Err(FexError::Data(format!(
                    "csv row {} has {} cells, expected {}",
                    lineno + 2,
                    cells.len(),
                    columns.len()
                )));
            }
            df.push(
                cells
                    .into_iter()
                    .map(|c| match c.parse::<f64>() {
                        Ok(v) if !c.is_empty() => Value::Num(v),
                        _ => Value::Str(c),
                    })
                    .collect(),
            );
        }
        Ok(df)
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn parse_csv_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' => quoted = true,
            ',' if !quoted => {
                out.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::stats;

    fn sample() -> DataFrame {
        let mut df = DataFrame::new(vec!["bench", "type", "time"]);
        df.push(vec!["fft".into(), "gcc".into(), 1.0.into()]);
        df.push(vec!["fft".into(), "gcc".into(), 3.0.into()]);
        df.push(vec!["fft".into(), "clang".into(), 4.0.into()]);
        df.push(vec!["lu".into(), "gcc".into(), 2.0.into()]);
        df
    }

    #[test]
    fn group_agg_means_per_key() {
        let df = sample();
        let g = df.group_agg(&["bench", "type"], "time", stats::mean).unwrap();
        assert_eq!(g.len(), 3);
        let fft_gcc = g.filter_eq("bench", "fft").unwrap().filter_eq("type", "gcc").unwrap();
        assert_eq!(fft_gcc.iter().next().unwrap()[2], Value::Num(2.0));
    }

    #[test]
    fn filter_and_distinct() {
        let df = sample();
        assert_eq!(df.filter_eq("type", "gcc").unwrap().len(), 3);
        assert_eq!(df.distinct("bench").unwrap(), vec!["fft", "lu"]);
    }

    #[test]
    fn csv_roundtrip() {
        let df = sample();
        let parsed = DataFrame::from_csv(&df.to_csv()).unwrap();
        assert_eq!(parsed.len(), df.len());
        assert_eq!(parsed.columns(), df.columns());
        assert_eq!(parsed.column_values("time").unwrap()[1], &Value::Num(3.0));
    }

    #[test]
    fn csv_escaping() {
        let mut df = DataFrame::new(vec!["a"]);
        df.push(vec!["x,y \"z\"".into()]);
        let parsed = DataFrame::from_csv(&df.to_csv()).unwrap();
        assert_eq!(parsed.iter().next().unwrap()[0], Value::Str("x,y \"z\"".into()));
    }

    #[test]
    fn errors_on_missing_columns_and_ragged_rows() {
        let df = sample();
        assert!(df.col("nope").is_err());
        assert!(DataFrame::from_csv("a,b\n1\n").is_err());
        assert!(DataFrame::from_csv("").is_err());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut df = DataFrame::new(vec!["a", "b"]);
        df.push(vec![1i64.into()]);
    }
}
