//! The framework-level error type.

use std::error::Error;
use std::fmt;

/// Any failure surfaced by the framework.
#[derive(Debug)]
pub enum FexError {
    /// A benchmark failed to build.
    Build {
        /// Benchmark name.
        benchmark: String,
        /// Build type.
        build_type: String,
        /// Underlying compiler error.
        source: fex_cc::CompileError,
    },
    /// A benchmark run faulted.
    Run {
        /// Benchmark name.
        benchmark: String,
        /// Build type the run executed under.
        build_type: String,
        /// Underlying VM error.
        source: fex_vm::VmError,
    },
    /// Container/installation problem.
    Container(fex_container::ContainerError),
    /// The experiment, build type, benchmark or install script name is
    /// not registered.
    UnknownName {
        /// What kind of name was looked up.
        kind: &'static str,
        /// The name.
        name: String,
    },
    /// The experiment configuration is invalid.
    Config(String),
    /// Collecting/plotting failed (missing columns, empty data…).
    Data(String),
}

impl fmt::Display for FexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FexError::Build { benchmark, build_type, source } => {
                write!(f, "building `{benchmark}` as `{build_type}` failed: {source}")
            }
            FexError::Run { benchmark, build_type, source } => {
                write!(f, "running `{benchmark}` [{build_type}] failed: {source}")
            }
            FexError::Container(e) => write!(f, "container: {e}"),
            FexError::UnknownName { kind, name } => write!(f, "unknown {kind} `{name}`"),
            FexError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            FexError::Data(msg) => write!(f, "data error: {msg}"),
        }
    }
}

impl Error for FexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FexError::Build { source, .. } => Some(source),
            FexError::Run { source, .. } => Some(source),
            FexError::Container(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fex_container::ContainerError> for FexError {
    fn from(e: fex_container::ContainerError) -> Self {
        FexError::Container(e)
    }
}

/// Framework result alias.
pub type Result<T> = std::result::Result<T, FexError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = FexError::UnknownName { kind: "experiment", name: "nope".into() };
        assert_eq!(e.to_string(), "unknown experiment `nope`");
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FexError>();
    }
}
