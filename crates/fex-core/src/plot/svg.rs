//! SVG rendering.

use std::fmt::Write as _;

use super::{Plot, PlotKind};

const PALETTE: [&str; 8] =
    ["#4878a8", "#e49444", "#5aa056", "#d1615d", "#857aab", "#8d7866", "#d2a295", "#6f8f9f"];

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 72.0;

/// Renders a plot to an SVG document.
pub fn render(plot: &Plot, width: u32, height: u32) -> String {
    let w = width as f64;
    let h = height as f64;
    let inner_w = w - MARGIN_L - MARGIN_R;
    let inner_h = h - MARGIN_T - MARGIN_B;
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = writeln!(s, r#"<rect width="{width}" height="{height}" fill="white"/>"#);
    let _ = writeln!(
        s,
        r#"<text x="{}" y="22" font-size="15" text-anchor="middle" font-family="sans-serif">{}</text>"#,
        w / 2.0,
        esc(&plot.title)
    );

    let (min_x, max_x) = x_range(plot);
    let max_y = plot.max_value().max(1e-12) * 1.08;

    // Axes.
    let x0 = MARGIN_L;
    let y0 = h - MARGIN_B;
    let _ = writeln!(
        s,
        r#"<line x1="{x0}" y1="{y0}" x2="{}" y2="{y0}" stroke="black"/>"#,
        w - MARGIN_R
    );
    let _ = writeln!(s, r#"<line x1="{x0}" y1="{MARGIN_T}" x2="{x0}" y2="{y0}" stroke="black"/>"#);
    // Y ticks.
    for t in 0..=4 {
        let v = max_y * t as f64 / 4.0;
        let y = y0 - inner_h * t as f64 / 4.0;
        let _ =
            writeln!(s, r#"<line x1="{}" y1="{y}" x2="{x0}" y2="{y}" stroke="black"/>"#, x0 - 4.0);
        let _ = writeln!(
            s,
            r#"<text x="{}" y="{}" font-size="11" text-anchor="end" font-family="sans-serif">{}</text>"#,
            x0 - 8.0,
            y + 4.0,
            fmt_num(v)
        );
    }
    // Axis labels.
    let _ = writeln!(
        s,
        r#"<text x="{}" y="{}" font-size="12" text-anchor="middle" font-family="sans-serif">{}</text>"#,
        w / 2.0,
        h - 10.0,
        esc(&plot.xlabel)
    );
    let _ = writeln!(
        s,
        r#"<text x="16" y="{}" font-size="12" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 16 {})">{}</text>"#,
        h / 2.0,
        h / 2.0,
        esc(&plot.ylabel)
    );

    // Reference line.
    if let Some(hl) = plot.hline {
        let y = y0 - inner_h * (hl / max_y);
        let _ = writeln!(
            s,
            r##"<line x1="{x0}" y1="{y}" x2="{}" y2="{y}" stroke="#888" stroke-dasharray="4 3"/>"##,
            w - MARGIN_R
        );
    }

    match plot.kind {
        PlotKind::Bar | PlotKind::GroupedBar | PlotKind::GroupedBarCi => {
            render_bars(&mut s, plot, x0, y0, inner_w, inner_h, max_y, false)
        }
        PlotKind::StackedBar | PlotKind::StackedGroupedBar => {
            render_bars(&mut s, plot, x0, y0, inner_w, inner_h, max_y, true)
        }
        PlotKind::Line | PlotKind::ScatterLine => {
            render_lines(&mut s, plot, x0, y0, inner_w, inner_h, min_x, max_x, max_y)
        }
    }

    // Legend.
    let mut ly = MARGIN_T + 4.0;
    for (i, series) in plot.series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let lx = w - MARGIN_R - 150.0;
        let _ = writeln!(
            s,
            r#"<rect x="{lx}" y="{}" width="12" height="12" fill="{color}"/>"#,
            ly - 10.0
        );
        let _ = writeln!(
            s,
            r#"<text x="{}" y="{ly}" font-size="11" font-family="sans-serif">{}</text>"#,
            lx + 16.0,
            esc(&series.name)
        );
        ly += 16.0;
    }
    s.push_str("</svg>\n");
    s
}

fn x_range(plot: &Plot) -> (f64, f64) {
    let xs: Vec<f64> = plot.series.iter().flat_map(|s| s.xs.clone().unwrap_or_default()).collect();
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if min.is_finite() && max.is_finite() && max > min {
        (min, max)
    } else {
        (0.0, 1.0)
    }
}

#[allow(clippy::too_many_arguments)]
fn render_bars(
    s: &mut String,
    plot: &Plot,
    x0: f64,
    y0: f64,
    inner_w: f64,
    inner_h: f64,
    max_y: f64,
    stacked: bool,
) {
    let ncat = plot.categories.len().max(1);
    let cat_w = inner_w / ncat as f64;
    // Stacked-grouped: group stacks by their `stack` label.
    let stacks: Vec<String> = if plot.kind == PlotKind::StackedGroupedBar {
        let mut v: Vec<String> = Vec::new();
        for series in &plot.series {
            let key = series.stack.clone().unwrap_or_default();
            if !v.contains(&key) {
                v.push(key);
            }
        }
        v
    } else if stacked {
        vec![String::new()]
    } else {
        Vec::new()
    };
    for (ci, cat) in plot.categories.iter().enumerate() {
        let cx = x0 + cat_w * (ci as f64 + 0.5);
        // Category label (slanted to fit).
        let _ = writeln!(
            s,
            r#"<text x="{cx}" y="{}" font-size="10" text-anchor="end" font-family="sans-serif" transform="rotate(-35 {cx} {})">{}</text>"#,
            y0 + 14.0,
            y0 + 14.0,
            esc(cat)
        );
        if stacked {
            let nst = stacks.len().max(1);
            let bar_w = (cat_w * 0.8) / nst as f64;
            for (gi, g) in stacks.iter().enumerate() {
                let bx = x0 + cat_w * ci as f64 + cat_w * 0.1 + bar_w * gi as f64;
                let mut acc = 0.0;
                for (si, series) in plot.series.iter().enumerate() {
                    if plot.kind == PlotKind::StackedGroupedBar
                        && series.stack.clone().unwrap_or_default() != *g
                    {
                        continue;
                    }
                    let v = series.values.get(ci).copied().unwrap_or(0.0);
                    let bh = inner_h * (v / max_y);
                    let by = y0 - inner_h * (acc / max_y) - bh;
                    let color = PALETTE[si % PALETTE.len()];
                    let _ = writeln!(
                        s,
                        r#"<rect x="{bx:.2}" y="{by:.2}" width="{bar_w:.2}" height="{bh:.2}" fill="{color}" stroke="white" stroke-width="0.5"/>"#
                    );
                    acc += v;
                }
            }
        } else {
            let nser = plot.series.len().max(1);
            let bar_w = (cat_w * 0.8) / nser as f64;
            for (si, series) in plot.series.iter().enumerate() {
                let v = series.values.get(ci).copied().unwrap_or(0.0);
                let bh = inner_h * (v / max_y);
                let bx = x0 + cat_w * ci as f64 + cat_w * 0.1 + bar_w * si as f64;
                let by = y0 - bh;
                let color = PALETTE[si % PALETTE.len()];
                let _ = writeln!(
                    s,
                    r#"<rect x="{bx:.2}" y="{by:.2}" width="{bar_w:.2}" height="{bh:.2}" fill="{color}"/>"#
                );
                // CI whiskers: a vertical error bar with end caps.
                let whisker = series.whiskers.as_ref().and_then(|w| w.get(ci)).copied();
                if let Some(hw) = whisker.filter(|hw| *hw > 0.0) {
                    let wx = bx + bar_w / 2.0;
                    let wh = inner_h * (hw / max_y);
                    let (top, bot) = (by - wh, (by + wh).min(y0));
                    let cap = (bar_w * 0.3).min(6.0);
                    let _ = writeln!(
                        s,
                        r#"<line x1="{wx:.2}" y1="{top:.2}" x2="{wx:.2}" y2="{bot:.2}" stroke="black" stroke-width="1"/>"#
                    );
                    for y in [top, bot] {
                        let _ = writeln!(
                            s,
                            r#"<line x1="{:.2}" y1="{y:.2}" x2="{:.2}" y2="{y:.2}" stroke="black" stroke-width="1"/>"#,
                            wx - cap,
                            wx + cap
                        );
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn render_lines(
    s: &mut String,
    plot: &Plot,
    x0: f64,
    y0: f64,
    inner_w: f64,
    inner_h: f64,
    min_x: f64,
    max_x: f64,
    max_y: f64,
) {
    let span = (max_x - min_x).max(1e-12);
    for (si, series) in plot.series.iter().enumerate() {
        let Some(xs) = &series.xs else { continue };
        let color = PALETTE[si % PALETTE.len()];
        let mut points = String::new();
        for (x, y) in xs.iter().zip(&series.values) {
            let px = x0 + inner_w * ((x - min_x) / span);
            let py = y0 - inner_h * (y / max_y);
            let _ = write!(points, "{px:.2},{py:.2} ");
            if plot.kind == PlotKind::ScatterLine {
                let _ = writeln!(s, r#"<circle cx="{px:.2}" cy="{py:.2}" r="3" fill="{color}"/>"#);
            }
        }
        let _ = writeln!(
            s,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
            points.trim_end()
        );
    }
    // X ticks.
    for t in 0..=4 {
        let v = min_x + span * t as f64 / 4.0;
        let x = x0 + inner_w * t as f64 / 4.0;
        let _ = writeln!(
            s,
            r#"<text x="{x}" y="{}" font-size="11" text-anchor="middle" font-family="sans-serif">{}</text>"#,
            y0 + 16.0,
            fmt_num(v)
        );
    }
}

fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if v.abs() >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plot::Series;

    #[test]
    fn svg_contains_bars_and_legend() {
        let mut p = Plot::new(PlotKind::Bar, "demo & test");
        p.categories = vec!["a".into(), "b".into()];
        p.series.push(Series::bars("s1", vec![1.0, 2.0]));
        p.hline = Some(1.0);
        let svg = p.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("<rect"));
        assert!(svg.contains("stroke-dasharray"), "reference line missing");
        assert!(svg.contains("demo &amp; test"), "title not escaped");
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn svg_lines_have_polyline_and_markers() {
        let mut p = Plot::new(PlotKind::ScatterLine, "tl");
        p.series.push(Series::line("gcc", vec![(0.0, 0.2), (10.0, 0.3), (20.0, 0.7)]));
        let svg = p.to_svg();
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn comparison_bars_draw_error_whiskers() {
        let mut p = Plot::new(PlotKind::GroupedBarCi, "cmp");
        p.categories = vec!["fft [gcc]".into()];
        p.series.push(Series::bars_with_ci("baseline", vec![2.0], vec![0.4]));
        p.series.push(Series::bars_with_ci("candidate", vec![1.5], vec![0.0]));
        let svg = p.to_svg();
        // One whisker spine + two caps for the baseline bar; zero-width
        // whiskers draw nothing.
        let error_bars = svg.matches(r#"stroke="black" stroke-width="1""#).count();
        assert_eq!(error_bars, 3);
    }

    #[test]
    fn empty_plot_still_renders() {
        let p = Plot::new(PlotKind::Line, "empty");
        let svg = p.to_svg();
        assert!(svg.contains("</svg>"));
    }
}
