//! ASCII rendering, for watching intermediate results in a terminal (the
//! paper lists a GUI as future work; a terminal renderer is the pragmatic
//! equivalent).

use std::fmt::Write as _;

use super::{Plot, PlotKind};

const BAR_WIDTH: usize = 44;
const GRID_W: usize = 60;
const GRID_H: usize = 16;

/// Renders a plot as monospace text.
pub fn render(plot: &Plot) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== {} ==", plot.title);
    if !plot.ylabel.is_empty() {
        let _ = writeln!(s, "   ({})", plot.ylabel);
    }
    match plot.kind {
        PlotKind::Line | PlotKind::ScatterLine => render_grid(&mut s, plot),
        _ => render_bars(&mut s, plot),
    }
    s
}

fn render_bars(s: &mut String, plot: &Plot) {
    let max = plot.max_value().max(1e-12);
    let label_w = plot
        .categories
        .iter()
        .map(|c| c.len())
        .chain(plot.series.iter().map(|x| x.name.len()))
        .max()
        .unwrap_or(8)
        .min(24);
    for (ci, cat) in plot.categories.iter().enumerate() {
        for series in &plot.series {
            let v = series.values.get(ci).copied().unwrap_or(0.0);
            let n = ((v / max) * BAR_WIDTH as f64).round() as usize;
            let tag = if plot.series.len() > 1 {
                format!("{cat:label_w$} {:label_w$}", series.name)
            } else {
                format!("{cat:label_w$}")
            };
            let whisker = series
                .whiskers
                .as_ref()
                .and_then(|w| w.get(ci))
                .copied()
                .filter(|hw| plot.kind == PlotKind::GroupedBarCi && *hw > 0.0)
                .map(|hw| format!(" ±{hw:.4}"))
                .unwrap_or_default();
            let _ = writeln!(
                s,
                "{tag} |{}{} {v:.4}{whisker}",
                "#".repeat(n),
                " ".repeat(BAR_WIDTH - n)
            );
        }
    }
    if let Some(hl) = plot.hline {
        let _ = writeln!(s, "(reference line at {hl})");
    }
}

fn render_grid(s: &mut String, plot: &Plot) {
    let mut grid = vec![vec![' '; GRID_W]; GRID_H];
    let xs: Vec<f64> = plot.series.iter().flat_map(|x| x.xs.clone().unwrap_or_default()).collect();
    if xs.is_empty() {
        let _ = writeln!(s, "(no data)");
        return;
    }
    let min_x = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max_x = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max_x - min_x).max(1e-12);
    let max_y = plot.max_value().max(1e-12);
    let marks = ['*', 'o', '+', 'x', '@', '%'];
    for (si, series) in plot.series.iter().enumerate() {
        let Some(sxs) = &series.xs else { continue };
        for (x, y) in sxs.iter().zip(&series.values) {
            let gx = (((x - min_x) / span) * (GRID_W - 1) as f64).round() as usize;
            let gy = ((y / max_y) * (GRID_H - 1) as f64).round() as usize;
            let row = GRID_H - 1 - gy.min(GRID_H - 1);
            grid[row][gx.min(GRID_W - 1)] = marks[si % marks.len()];
        }
    }
    for row in &grid {
        let _ = writeln!(s, "|{}", row.iter().collect::<String>());
    }
    let _ = writeln!(s, "+{}", "-".repeat(GRID_W));
    let _ = writeln!(s, " {:<.3} .. {:<.3}  ({})", min_x, max_x, plot.xlabel);
    for (si, series) in plot.series.iter().enumerate() {
        let _ = writeln!(s, "  {} = {}", marks[si % marks.len()], series.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plot::Series;

    #[test]
    fn bar_render_scales_to_max() {
        let mut p = Plot::new(PlotKind::Bar, "t");
        p.categories = vec!["aa".into(), "bb".into()];
        p.series.push(Series::bars("s", vec![1.0, 2.0]));
        let out = render(&p);
        assert!(out.contains("== t =="));
        let lines: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        let count = |l: &str| l.chars().filter(|c| *c == '#').count();
        assert_eq!(count(lines[1]), BAR_WIDTH);
        assert_eq!(count(lines[0]), BAR_WIDTH / 2);
    }

    #[test]
    fn line_render_draws_markers() {
        let mut p = Plot::new(PlotKind::Line, "l");
        p.series.push(Series::line("a", vec![(0.0, 1.0), (1.0, 2.0)]));
        p.series.push(Series::line("b", vec![(0.0, 2.0), (1.0, 1.0)]));
        let out = render(&p);
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("= a"));
    }

    #[test]
    fn comparison_bars_annotate_whiskers() {
        let mut p = Plot::new(PlotKind::GroupedBarCi, "cmp");
        p.categories = vec!["fft [gcc]".into()];
        p.series.push(Series::bars_with_ci("baseline", vec![2.0], vec![0.5]));
        p.series.push(Series::bars_with_ci("candidate", vec![1.0], vec![0.0]));
        let out = render(&p);
        assert!(out.contains("±0.5000"), "nonzero whisker annotated:\n{out}");
        assert_eq!(out.matches('±').count(), 1, "zero whiskers are omitted");
    }

    #[test]
    fn empty_line_plot_is_graceful() {
        let p = Plot::new(PlotKind::Line, "e");
        assert!(render(&p).contains("(no data)"));
    }
}
