//! The plot subsystem — the framework's matplotlib substitute.
//!
//! Provides the five generic plot kinds Table I lists (lineplot, regular /
//! stacked / grouped / stacked-grouped barplot) plus the throughput-latency
//! scatterline of Fig 7, each renderable to SVG (for files) and ASCII (for
//! terminals). Like the paper's plot stage, input is the collected
//! [`DataFrame`] and per-plot hooks are just ordinary Rust: build the
//! [`Plot`] value however you like before rendering.
//!
//! [`DataFrame`]: crate::collect::DataFrame

mod ascii;
mod svg;

use crate::collect::{stats, DataFrame};
use crate::error::{FexError, Result};

/// Plot flavours (Table I row "Plots", plus the Fig 7 scatterline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlotKind {
    /// One bar per category per series, side by side.
    Bar,
    /// Series stacked on top of each other per category.
    StackedBar,
    /// Series grouped per category (synonym of `Bar` with >1 series, kept
    /// as a distinct kind to mirror Table I).
    GroupedBar,
    /// Groups of stacks: series carry a `stack` label; stacks are grouped
    /// per category.
    StackedGroupedBar,
    /// X-Y lines (e.g. thread-count scaling).
    Line,
    /// X-Y lines with point markers (throughput-latency curves).
    ScatterLine,
    /// Grouped bars with 95% CI whiskers — the `fex compare`
    /// baseline-vs-candidate comparison plot.
    GroupedBarCi,
}

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Y values (per category for bar kinds, per x for line kinds).
    pub values: Vec<f64>,
    /// X values for line kinds (`None` for bar kinds).
    pub xs: Option<Vec<f64>>,
    /// Stack group for [`PlotKind::StackedGroupedBar`].
    pub stack: Option<String>,
    /// Per-value error-bar half-widths (e.g. 95% CI) for
    /// [`PlotKind::GroupedBarCi`]; `None` draws no whiskers.
    pub whiskers: Option<Vec<f64>>,
}

impl Series {
    /// A bar series.
    pub fn bars(name: impl Into<String>, values: Vec<f64>) -> Self {
        Series { name: name.into(), values, xs: None, stack: None, whiskers: None }
    }

    /// A bar series with error-bar half-widths per value.
    pub fn bars_with_ci(name: impl Into<String>, values: Vec<f64>, whiskers: Vec<f64>) -> Self {
        Series { name: name.into(), values, xs: None, stack: None, whiskers: Some(whiskers) }
    }

    /// A line series.
    pub fn line(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        let (xs, values) = points.into_iter().unzip();
        Series { name: name.into(), values, xs: Some(xs), stack: None, whiskers: None }
    }
}

/// A complete plot description.
#[derive(Debug, Clone, PartialEq)]
pub struct Plot {
    /// Title.
    pub title: String,
    /// X axis label.
    pub xlabel: String,
    /// Y axis label.
    pub ylabel: String,
    /// Kind.
    pub kind: PlotKind,
    /// Category labels (bar kinds).
    pub categories: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
    /// Optional horizontal reference line (e.g. 1.0 for normalised plots).
    pub hline: Option<f64>,
}

impl Plot {
    /// Creates an empty plot of a kind.
    pub fn new(kind: PlotKind, title: impl Into<String>) -> Self {
        Plot {
            title: title.into(),
            xlabel: String::new(),
            ylabel: String::new(),
            kind,
            categories: Vec::new(),
            series: Vec::new(),
            hline: None,
        }
    }

    /// Renders to SVG.
    pub fn to_svg(&self) -> String {
        svg::render(self, 760, 420)
    }

    /// Renders to terminal-friendly ASCII.
    pub fn to_ascii(&self) -> String {
        ascii::render(self)
    }

    /// Largest plotted value (for scaling); 0 for empty plots.
    pub(crate) fn max_value(&self) -> f64 {
        match self.kind {
            PlotKind::StackedBar | PlotKind::StackedGroupedBar => {
                // Height of the tallest stack.
                let mut totals = std::collections::BTreeMap::new();
                for s in &self.series {
                    for (i, v) in s.values.iter().enumerate() {
                        let key = (s.stack.clone().unwrap_or_default(), i);
                        *totals.entry(key).or_insert(0.0) += *v;
                    }
                }
                totals.values().copied().fold(0.0, f64::max)
            }
            PlotKind::GroupedBarCi => {
                // Whiskers must fit inside the plot area.
                self.series
                    .iter()
                    .flat_map(|s| {
                        s.values.iter().enumerate().map(move |(i, v)| {
                            v + s.whiskers.as_ref().and_then(|w| w.get(i)).copied().unwrap_or(0.0)
                        })
                    })
                    .fold(0.0, f64::max)
            }
            _ => self.series.iter().flat_map(|s| s.values.iter().copied()).fold(0.0, f64::max),
        }
        .max(self.hline.unwrap_or(0.0))
    }
}

/// Builds a bar plot from a frame: one category per distinct
/// `category_col` value, one series per distinct `series_col` value, bar
/// heights from the mean of `value_col`.
///
/// # Errors
///
/// [`FexError::Data`] for unknown columns or an empty frame.
pub fn barplot_from_frame(
    df: &DataFrame,
    category_col: &str,
    series_col: &str,
    value_col: &str,
    title: &str,
) -> Result<Plot> {
    if df.is_empty() {
        return Err(FexError::Data("cannot plot an empty frame".into()));
    }
    let categories = df.distinct(category_col)?;
    let series_names = df.distinct(series_col)?;
    let agg = df.group_agg(&[category_col, series_col], value_col, stats::mean)?;
    let mut plot =
        Plot::new(if series_names.len() > 1 { PlotKind::GroupedBar } else { PlotKind::Bar }, title);
    plot.categories = categories.clone();
    plot.xlabel = category_col.to_string();
    plot.ylabel = value_col.to_string();
    for sname in &series_names {
        let mut values = Vec::with_capacity(categories.len());
        for cat in &categories {
            let cell = agg.filter_eq(category_col, cat)?.filter_eq(series_col, sname)?;
            let v = cell.iter().next().and_then(|r| r[2].as_num()).unwrap_or(0.0);
            values.push(v);
        }
        plot.series.push(Series::bars(sname.clone(), values));
    }
    Ok(plot)
}

/// Builds a line plot (x = `x_col`, one line per `series_col`, y = mean of
/// `value_col`).
///
/// # Errors
///
/// [`FexError::Data`] for unknown columns or an empty frame.
pub fn lineplot_from_frame(
    df: &DataFrame,
    x_col: &str,
    series_col: &str,
    value_col: &str,
    title: &str,
) -> Result<Plot> {
    if df.is_empty() {
        return Err(FexError::Data("cannot plot an empty frame".into()));
    }
    let series_names = df.distinct(series_col)?;
    let agg = df.group_agg(&[series_col, x_col], value_col, stats::mean)?;
    let mut plot = Plot::new(PlotKind::Line, title);
    plot.xlabel = x_col.to_string();
    plot.ylabel = value_col.to_string();
    for sname in &series_names {
        let sub = agg.filter_eq(series_col, sname)?;
        let mut pts: Vec<(f64, f64)> = sub
            .iter()
            .map(|r| {
                let x =
                    r[1].as_num().unwrap_or_else(|| r[1].to_cell_string().parse().unwrap_or(0.0));
                (x, r[2].as_num().unwrap_or(0.0))
            })
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x values"));
        plot.series.push(Series::line(sname.clone(), pts));
    }
    Ok(plot)
}

/// Normalises `value_col` of every row against the per-category value of
/// the `baseline` series (the paper's "normalized runtime w.r.t. native
/// GCC" transformation for Fig 6). Returns a new frame with the same key
/// columns and a normalised value column.
///
/// # Errors
///
/// [`FexError::Data`] if columns are missing or the baseline has no value
/// for some category.
pub fn normalize_against(
    df: &DataFrame,
    category_col: &str,
    series_col: &str,
    value_col: &str,
    baseline: &str,
) -> Result<DataFrame> {
    let agg = df.group_agg(&[category_col, series_col], value_col, stats::mean)?;
    let base = agg.filter_eq(series_col, baseline)?;
    let mut base_by_cat = std::collections::BTreeMap::new();
    for r in base.iter() {
        base_by_cat.insert(r[0].to_cell_string(), r[2].as_num().unwrap_or(0.0));
    }
    let mut out = DataFrame::new(vec![
        category_col.to_string(),
        series_col.to_string(),
        format!("normalized_{value_col}"),
    ]);
    for r in agg.iter() {
        let cat = r[0].to_cell_string();
        let b = *base_by_cat
            .get(&cat)
            .ok_or_else(|| FexError::Data(format!("no baseline value for `{cat}`")))?;
        if b == 0.0 {
            return Err(FexError::Data(format!("zero baseline for `{cat}`")));
        }
        let v = r[2].as_num().unwrap_or(0.0) / b;
        out.push(vec![r[0].clone(), r[1].clone(), v.into()]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Value;

    fn perf_frame() -> DataFrame {
        let mut df = DataFrame::new(vec!["benchmark", "type", "time"]);
        for (b, t, v) in [
            ("fft", "gcc_native", 1.0),
            ("fft", "clang_native", 2.0),
            ("lu", "gcc_native", 2.0),
            ("lu", "clang_native", 2.2),
        ] {
            df.push(vec![b.into(), t.into(), v.into()]);
        }
        df
    }

    #[test]
    fn barplot_builder_shapes_series() {
        let p = barplot_from_frame(&perf_frame(), "benchmark", "type", "time", "t").unwrap();
        assert_eq!(p.kind, PlotKind::GroupedBar);
        assert_eq!(p.categories, vec!["fft", "lu"]);
        assert_eq!(p.series.len(), 2);
        assert_eq!(p.series[0].values, vec![1.0, 2.0]);
    }

    #[test]
    fn normalisation_reproduces_fig6_semantics() {
        let n =
            normalize_against(&perf_frame(), "benchmark", "type", "time", "gcc_native").unwrap();
        // gcc rows normalise to 1.0; clang fft to 2.0.
        let clang_fft =
            n.filter_eq("type", "clang_native").unwrap().filter_eq("benchmark", "fft").unwrap();
        assert_eq!(clang_fft.iter().next().unwrap()[2], Value::Num(2.0));
        let gcc_lu =
            n.filter_eq("type", "gcc_native").unwrap().filter_eq("benchmark", "lu").unwrap();
        assert_eq!(gcc_lu.iter().next().unwrap()[2], Value::Num(1.0));
    }

    #[test]
    fn lineplot_sorts_points_by_x() {
        let mut df = DataFrame::new(vec!["threads", "type", "time"]);
        for (m, v) in [(4i64, 0.3), (1, 1.0), (2, 0.55)] {
            df.push(vec![m.into(), "gcc".into(), v.into()]);
        }
        let p = lineplot_from_frame(&df, "threads", "type", "time", "scaling").unwrap();
        assert_eq!(p.series[0].xs.as_ref().unwrap(), &vec![1.0, 2.0, 4.0]);
        assert_eq!(p.series[0].values, vec![1.0, 0.55, 0.3]);
    }

    #[test]
    fn stacked_max_is_stack_height() {
        let mut p = Plot::new(PlotKind::StackedBar, "s");
        p.categories = vec!["a".into()];
        p.series.push(Series::bars("l1", vec![2.0]));
        p.series.push(Series::bars("l2", vec![3.0]));
        assert_eq!(p.max_value(), 5.0);
    }

    #[test]
    fn ci_whiskers_extend_the_value_range() {
        let mut p = Plot::new(PlotKind::GroupedBarCi, "c");
        p.categories = vec!["a".into(), "b".into()];
        p.series.push(Series::bars_with_ci("base", vec![2.0, 4.0], vec![0.5, 1.5]));
        p.series.push(Series::bars("cand", vec![3.0]));
        assert_eq!(p.max_value(), 5.5, "value + whisker half-width");
    }

    #[test]
    fn empty_frames_are_rejected() {
        let df = DataFrame::new(vec!["benchmark", "type", "time"]);
        assert!(barplot_from_frame(&df, "benchmark", "type", "time", "t").is_err());
        assert!(lineplot_from_frame(&df, "benchmark", "type", "time", "t").is_err());
    }
}
