//! The content-addressed artifact graph: incremental evaluation's
//! memoization table.
//!
//! Every artifact the pipeline produces — a benchmark's source, its
//! compiled program, the decoded form, one run unit's measured result,
//! the aggregate frame — is a *node* keyed by a `fex256` digest over the
//! digests of its inputs plus exactly the configuration bits that affect
//! it. The key derivation is layered so a change dirties precisely its
//! own subtree and nothing else:
//!
//! | node kind  | key = digest over                                        |
//! |------------|----------------------------------------------------------|
//! | `source`   | benchmark name, Cmm source bytes ([`fex_cc::source_digest`]) |
//! | `compiled` | source key, backend name+version, `-O` level, asan, debug |
//! | `decoded`  | compiled key, pass mask bits, cost-model fingerprint      |
//! | `run_unit` | decoded key, unit seed, threads, rep, input, args, budget |
//! | `aggregate`| run-unit keys in matrix order, repetition policy, tool    |
//! | `plot`     | aggregate key, plot request                               |
//!
//! The graph lives under `<lab>/graph/` with the same append-only
//! flat-JSON index discipline as [`lab::store`](crate::lab::store): one
//! object per line, monotonic `seq`, no wall clocks, torn appends sealed
//! onto their own line, per-line fault isolation on read. `fex lab fsck`
//! walks it (orphaned node dirs, payload digest mismatches) with the same
//! detect/quarantine treatment as run dirs.
//!
//! Only *clean* run units are cached: first-attempt successes of
//! fault-free units. Fault-armed or failing units bypass the graph
//! entirely and re-execute on warm runs, so retry, backoff and
//! quarantine behaviour is identical cold and warm — which is what makes
//! warm CSVs, normalized journal streams and metrics roll-ups
//! byte-identical to cold ones (locked by `tests/graph_diff.rs` and the
//! fuzzer's `warm` oracle).

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use fex_container::{digest_bytes, Digest, DigestBuilder};
use fex_vm::{CacheStats, HeapStats, PerfCounters, RunResult};

use crate::error::{FexError, Result};
use crate::journal::{self, JsonLine};

/// What a graph node is, and therefore what its payload holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeKind {
    /// A benchmark's source bytes (provenance only; sources live in the
    /// suite).
    Source,
    /// A compiled program for one build type.
    Compiled,
    /// A decoded program for one pass mask and cost model.
    Decoded,
    /// One run unit's measured [`RunResult`].
    RunUnit,
    /// One experiment's aggregate results frame.
    Aggregate,
    /// A rendered plot.
    Plot,
}

impl NodeKind {
    /// Every kind, in display order.
    pub const ALL: [NodeKind; 6] = [
        NodeKind::Source,
        NodeKind::Compiled,
        NodeKind::Decoded,
        NodeKind::RunUnit,
        NodeKind::Aggregate,
        NodeKind::Plot,
    ];

    /// The stable name recorded in the graph index.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeKind::Source => "source",
            NodeKind::Compiled => "compiled",
            NodeKind::Decoded => "decoded",
            NodeKind::RunUnit => "run_unit",
            NodeKind::Aggregate => "aggregate",
            NodeKind::Plot => "plot",
        }
    }

    /// Parses a stable name back.
    pub fn parse(s: &str) -> Option<NodeKind> {
        NodeKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl std::fmt::Display for NodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------

fn feed(d: &mut DigestBuilder, upstream: Digest) {
    d.update(&upstream.0.to_le_bytes());
}

/// The compiled-program key: the source key plus every build option that
/// changes the emitted bytecode (or its provenance).
pub fn compiled_key(
    source: Digest,
    backend_name: &str,
    backend_version: &str,
    opt_level: u8,
    asan: bool,
    debug: bool,
) -> Digest {
    let mut d = DigestBuilder::new();
    feed(&mut d, source);
    d.update_str(backend_name).update_str(backend_version);
    d.update(&[opt_level, u8::from(asan), u8::from(debug)]);
    d.finish()
}

/// The decoded-program key: the compiled key plus the peephole pass mask
/// and the cost-model fingerprint. A cost-model knob change dirties every
/// decoded program (block cycle totals are pre-summed at decode time) but
/// no compiled program.
pub fn decoded_key(compiled: Digest, pass_bits: u8, cost_fingerprint: u64) -> Digest {
    let mut d = DigestBuilder::new();
    feed(&mut d, compiled);
    d.update(&[pass_bits]);
    d.update(&cost_fingerprint.to_le_bytes());
    d.finish()
}

/// One run unit's key: the decoded key plus the unit's full coordinates —
/// its derived seed, thread count, repetition tag (`None` is distinct
/// from every `Some(_)`), workload input and arguments, and the
/// resilience instruction budget (the only policy knob that can change a
/// clean run's outcome).
///
/// Deliberately excluded: `--jobs`, `--chunk`, the MRU fast path and the
/// decode cache (all proven result-neutral by the differential suites),
/// the measurement tool (extraction happens at collect time from the same
/// [`RunResult`]), and the retry attempt (only first attempts are
/// cached).
pub fn unit_key(
    decoded: Digest,
    unit_seed: u64,
    threads: usize,
    rep: Option<usize>,
    input: &str,
    args: &[i64],
    run_budget: Option<u64>,
) -> Digest {
    let mut d = DigestBuilder::new();
    feed(&mut d, decoded);
    d.update(&unit_seed.to_le_bytes());
    d.update(&(threads as u64).to_le_bytes());
    d.update(&rep.map_or(0u64, |r| r as u64 + 1).to_le_bytes());
    d.update_str(input);
    for a in args {
        d.update(&a.to_le_bytes());
    }
    d.update(&run_budget.map_or(0u64, |b| b + 1).to_le_bytes());
    d.finish()
}

/// The aggregate-frame key: every run-unit key in matrix order plus the
/// policies that shape the frame from the same runs.
pub fn aggregate_key(units: &[Digest], repetitions: &str, tool: &str) -> Digest {
    let mut d = DigestBuilder::new();
    for u in units {
        feed(&mut d, *u);
    }
    d.update_str(repetitions).update_str(tool);
    d.finish()
}

// ---------------------------------------------------------------------
// The on-disk node cache
// ---------------------------------------------------------------------

/// One line of the graph index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphIndexEntry {
    /// Monotonic sequence number (insertion order).
    pub seq: u64,
    /// The node's key (`fex256:…`).
    pub digest: String,
    /// What the node is.
    pub kind: NodeKind,
    /// Digest of the payload bytes as written — `fex lab fsck`
    /// recomputes this to catch silently-edited or torn payloads.
    pub payload_digest: String,
}

impl GraphIndexEntry {
    pub(crate) fn to_json(&self) -> String {
        let mut w = JsonLine::object("digest", &self.digest);
        w.num("seq", self.seq as i64)
            .str("kind", self.kind.as_str())
            .str("payload", &self.payload_digest);
        w.finish()
    }

    pub(crate) fn parse(line: &str) -> Result<GraphIndexEntry> {
        let bad = |i: journal::ParseIssue| FexError::Data(format!("corrupt graph index: {i}"));
        let map = journal::parse_flat_object(line).map_err(bad)?;
        let kind_name = journal::get_str(&map, "kind").map_err(bad)?;
        let kind = NodeKind::parse(kind_name).ok_or_else(|| {
            FexError::Data(format!("corrupt graph index: unknown kind `{kind_name}`"))
        })?;
        Ok(GraphIndexEntry {
            seq: journal::get_u64(&map, "seq").map_err(bad)?,
            digest: journal::get_str(&map, "digest").map_err(bad)?.to_string(),
            kind,
            payload_digest: journal::get_str(&map, "payload").map_err(bad)?.to_string(),
        })
    }
}

/// The artifact graph's node cache, rooted at `<lab>/graph/`.
///
/// Layout mirrors the run store:
///
/// ```text
/// <lab>/graph/
///   index.json                   # one flat JSON object per line
///   nodes/<digest>/payload.json  # the node's cached payload
/// ```
#[derive(Debug)]
pub struct ArtifactGraph {
    root: PathBuf,
    /// digest value → kind, for O(1) lookups.
    index: HashMap<u128, NodeKind>,
    next_seq: u64,
    warnings: Vec<String>,
    hits: u64,
    misses: u64,
}

impl ArtifactGraph {
    /// The graph's directory name under the lab root.
    pub const SUBDIR: &'static str = "graph";

    /// Opens (creating if necessary) the graph under the lab rooted at
    /// `lab_root`. Corrupt index lines are skipped with a warning, the
    /// same per-line fault isolation as the run store.
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] when the directory cannot be created.
    pub fn open(lab_root: impl AsRef<Path>) -> Result<Self> {
        let root = lab_root.as_ref().join(Self::SUBDIR);
        fs::create_dir_all(root.join("nodes")).map_err(|e| {
            FexError::Data(format!("cannot create graph at `{}`: {e}", root.display()))
        })?;
        let (entries, warnings) = Self::scan_at(&root);
        let next_seq = entries.iter().map(|e| e.seq).max().map_or(0, |m| m + 1);
        let index =
            entries.iter().filter_map(|e| parse_digest(&e.digest).map(|d| (d.0, e.kind))).collect();
        Ok(ArtifactGraph { root, index, next_seq, warnings, hits: 0, misses: 0 })
    }

    /// The graph's root directory (`<lab>/graph`).
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Reads a graph index with per-line fault isolation: every parseable
    /// entry plus one warning per skipped line.
    pub fn scan_at(root: &Path) -> (Vec<GraphIndexEntry>, Vec<String>) {
        let Ok(text) = fs::read_to_string(root.join("index.json")) else {
            return (Vec::new(), Vec::new());
        };
        let mut entries = Vec::new();
        let mut warnings = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match GraphIndexEntry::parse(line) {
                Ok(e) => entries.push(e),
                Err(e) => warnings.push(format!("skipping graph index line {}: {e}", i + 1)),
            }
        }
        (entries, warnings)
    }

    /// Warnings accumulated while opening (corrupt index lines).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Whether a node with this key exists.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.index.contains_key(&digest.0)
    }

    /// Nodes currently indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the graph holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Run units served from the cache this session.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Run-unit lookups that found no (usable) node this session.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up a cached run-unit result, counting a session hit or miss.
    /// Unreadable or torn payloads degrade to a miss — the unit simply
    /// re-executes — never an error.
    pub fn lookup_run(&mut self, digest: &Digest) -> Option<RunResult> {
        let served = match self.index.get(&digest.0) {
            Some(NodeKind::RunUnit) => fs::read_to_string(self.payload_path(digest))
                .ok()
                .and_then(|text| run_from_json(text.trim())),
            _ => None,
        };
        match served {
            Some(run) => {
                self.hits += 1;
                Some(run)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a clean run unit's result under its key. Idempotent: a key
    /// already present is left untouched (content-addressed nodes are
    /// immutable).
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] on filesystem failures.
    pub fn store_run(&mut self, digest: &Digest, run: &RunResult) -> Result<()> {
        self.store_node(NodeKind::RunUnit, digest, &run_to_json(run))
    }

    /// Stores an arbitrary node payload (source/compiled/decoded
    /// provenance, aggregate frames). Idempotent like [`store_run`].
    ///
    /// [`store_run`]: ArtifactGraph::store_run
    ///
    /// # Errors
    ///
    /// [`FexError::Data`] on filesystem failures.
    pub fn store_node(&mut self, kind: NodeKind, digest: &Digest, payload: &str) -> Result<()> {
        if self.contains(digest) {
            return Ok(());
        }
        let io = |e: std::io::Error| FexError::Data(format!("graph write failed: {e}"));
        let dir = self.node_dir(digest);
        fs::create_dir_all(&dir).map_err(io)?;
        fs::write(dir.join("payload.json"), payload).map_err(io)?;
        let entry = GraphIndexEntry {
            seq: self.next_seq,
            digest: digest.to_string(),
            kind,
            payload_digest: digest_bytes(payload.as_bytes()).to_string(),
        };
        let mut index = fs::read_to_string(self.index_path()).unwrap_or_default();
        if !index.is_empty() && !index.ends_with('\n') {
            // A previous append was torn mid-line (crash); seal the torn
            // fragment onto its own line so the new entry stays parseable.
            index.push('\n');
        }
        index.push_str(&entry.to_json());
        index.push('\n');
        fs::write(self.index_path(), index).map_err(io)?;
        self.index.insert(digest.0, kind);
        self.next_seq += 1;
        Ok(())
    }

    /// Node counts per kind, for `fex graph stats`.
    pub fn node_counts(&self) -> BTreeMap<NodeKind, usize> {
        let mut counts = BTreeMap::new();
        for kind in self.index.values() {
            *counts.entry(*kind).or_insert(0) += 1;
        }
        counts
    }

    /// Renders `fex graph stats` output.
    pub fn render_stats(&self) -> String {
        let mut s = format!("artifact graph at `{}`\n", self.root.display());
        let counts = self.node_counts();
        let _ = writeln!(s, "{:<10} {:>6}", "kind", "nodes");
        for kind in NodeKind::ALL {
            let _ =
                writeln!(s, "{:<10} {:>6}", kind.as_str(), counts.get(&kind).copied().unwrap_or(0));
        }
        let _ = writeln!(s, "{:<10} {:>6}", "total", self.len());
        for w in &self.warnings {
            let _ = writeln!(s, "warning: {w}");
        }
        s
    }

    pub(crate) fn index_path(&self) -> PathBuf {
        self.root.join("index.json")
    }

    fn node_dir(&self, digest: &Digest) -> PathBuf {
        node_dir_at(&self.root, &digest.to_string())
    }

    fn payload_path(&self, digest: &Digest) -> PathBuf {
        self.node_dir(digest).join("payload.json")
    }
}

/// The node directory for a digest string, under a graph root.
pub(crate) fn node_dir_at(root: &Path, digest: &str) -> PathBuf {
    root.join("nodes").join(digest.trim_start_matches("fex256:"))
}

/// Parses a `fex256:<hex>` digest string back into a [`Digest`].
pub(crate) fn parse_digest(s: &str) -> Option<Digest> {
    u128::from_str_radix(s.strip_prefix("fex256:")?, 16).ok().map(Digest)
}

// ---------------------------------------------------------------------
// Run-unit payload (de)serialization
// ---------------------------------------------------------------------

/// Serializes a clean run's measured result as one flat JSON line.
///
/// `wall_seconds` is stored as its IEEE bit pattern so the round trip is
/// bit-exact; `per_core`, `attack_events` and `hijacks` are *not* stored —
/// only fault-free units are cached (the latter two are empty by the
/// cacheability check) and nothing downstream of the collector reads
/// per-core counters.
fn run_to_json(run: &RunResult) -> String {
    let c = &run.counters;
    let h = &run.heap;
    let mut w = JsonLine::object("node", NodeKind::RunUnit.as_str());
    w.num("exit", run.exit)
        .str("stdout", &run.stdout)
        .num("elapsed_cycles", run.elapsed_cycles as i64)
        .num("wall_seconds_bits", run.wall_seconds.to_bits() as i64)
        .num("maxrss_bytes", run.maxrss_bytes as i64)
        .num("ctr_instructions", c.instructions as i64)
        .num("ctr_cycles", c.cycles as i64)
        .num("ctr_loads", c.loads as i64)
        .num("ctr_stores", c.stores as i64)
        .num("ctr_branches", c.branches as i64)
        .num("ctr_branch_mispredicts", c.branch_mispredicts as i64)
        .num("ctr_l1_misses", c.l1_misses as i64)
        .num("ctr_l2_misses", c.l2_misses as i64)
        .num("ctr_llc_misses", c.llc_misses as i64)
        .num("ctr_l1_accesses", c.l1_accesses as i64)
        .num("ctr_calls", c.calls as i64)
        .num("ctr_allocs", c.allocs as i64)
        .num("ctr_alloc_bytes", c.alloc_bytes as i64)
        .num("ctr_asan_checks", c.asan_checks as i64)
        .num("heap_allocs", h.allocs as i64)
        .num("heap_frees", h.frees as i64)
        .num("heap_payload_bytes", h.payload_bytes as i64)
        .num("heap_redzone_bytes", h.redzone_bytes as i64)
        .num("heap_peak_reserved", h.peak_reserved as i64)
        .num("l1_accesses", run.l1.accesses as i64)
        .num("l1_hits", run.l1.hits as i64)
        .num("l2_accesses", run.l2.accesses as i64)
        .num("l2_hits", run.l2.hits as i64)
        .num("llc_accesses", run.llc.accesses as i64)
        .num("llc_hits", run.llc.hits as i64);
    w.finish()
}

/// Parses a cached run payload back. `None` on any damage — the caller
/// treats that as a miss and re-executes.
fn run_from_json(line: &str) -> Option<RunResult> {
    let map = journal::parse_flat_object(line).ok()?;
    let int = |k: &str| journal::get_i64(&map, k).ok();
    let uint = |k: &str| journal::get_u64(&map, k).ok();
    Some(RunResult {
        exit: int("exit")?,
        stdout: journal::get_str(&map, "stdout").ok()?.to_string(),
        counters: PerfCounters {
            instructions: uint("ctr_instructions")?,
            cycles: uint("ctr_cycles")?,
            loads: uint("ctr_loads")?,
            stores: uint("ctr_stores")?,
            branches: uint("ctr_branches")?,
            branch_mispredicts: uint("ctr_branch_mispredicts")?,
            l1_misses: uint("ctr_l1_misses")?,
            l2_misses: uint("ctr_l2_misses")?,
            llc_misses: uint("ctr_llc_misses")?,
            l1_accesses: uint("ctr_l1_accesses")?,
            calls: uint("ctr_calls")?,
            allocs: uint("ctr_allocs")?,
            alloc_bytes: uint("ctr_alloc_bytes")?,
            asan_checks: uint("ctr_asan_checks")?,
        },
        per_core: Vec::new(),
        elapsed_cycles: uint("elapsed_cycles")?,
        wall_seconds: f64::from_bits(int("wall_seconds_bits")? as u64),
        heap: HeapStats {
            allocs: uint("heap_allocs")?,
            frees: uint("heap_frees")?,
            payload_bytes: uint("heap_payload_bytes")?,
            redzone_bytes: uint("heap_redzone_bytes")?,
            peak_reserved: uint("heap_peak_reserved")?,
        },
        maxrss_bytes: uint("maxrss_bytes")?,
        l1: CacheStats { accesses: uint("l1_accesses")?, hits: uint("l1_hits")? },
        l2: CacheStats { accesses: uint("l2_accesses")?, hits: uint("l2_hits")? },
        llc: CacheStats { accesses: uint("llc_accesses")?, hits: uint("llc_hits")? },
        attack_events: Vec::new(),
        hijacks: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_lab(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fex-graph-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_run() -> RunResult {
        RunResult {
            exit: 7,
            stdout: "norm: 3.5\n".into(),
            counters: PerfCounters {
                instructions: 1000,
                cycles: 2500,
                loads: 120,
                stores: 80,
                branches: 200,
                branch_mispredicts: 12,
                l1_misses: 10,
                l2_misses: 4,
                llc_misses: 2,
                l1_accesses: 200,
                calls: 9,
                allocs: 3,
                alloc_bytes: 192,
                asan_checks: 0,
            },
            per_core: Vec::new(),
            elapsed_cycles: 2500,
            wall_seconds: 2500.0 / 3.0e9,
            heap: HeapStats {
                allocs: 3,
                frees: 3,
                payload_bytes: 192,
                redzone_bytes: 0,
                peak_reserved: 256,
            },
            maxrss_bytes: 65536,
            l1: CacheStats { accesses: 200, hits: 190 },
            l2: CacheStats { accesses: 10, hits: 6 },
            llc: CacheStats { accesses: 4, hits: 2 },
            attack_events: Vec::new(),
            hijacks: Vec::new(),
        }
    }

    #[test]
    fn key_derivation_layers_dirty_exactly_their_subtree() {
        let src = fex_cc::source_digest("fft", "fn main() -> int { return 0; }");
        let compiled = compiled_key(src, "gcc", "6.1.0", 2, false, false);
        let decoded = decoded_key(compiled, 0b111, 42);
        let unit = unit_key(decoded, 7, 2, Some(0), "native", &[64], None);

        // Same inputs, same keys: pure functions.
        assert_eq!(compiled, compiled_key(src, "gcc", "6.1.0", 2, false, false));
        assert_eq!(decoded, decoded_key(compiled, 0b111, 42));
        assert_eq!(unit, unit_key(decoded, 7, 2, Some(0), "native", &[64], None));

        // Source edits dirty the whole chain.
        let src2 = fex_cc::source_digest("fft", "fn main() -> int { return 1; }");
        assert_ne!(src, src2);
        assert_ne!(compiled, compiled_key(src2, "gcc", "6.1.0", 2, false, false));

        // Build options dirty compiled and below, not source.
        assert_ne!(compiled, compiled_key(src, "clang", "3.8.0", 2, false, false));
        assert_ne!(compiled, compiled_key(src, "gcc", "6.1.0", 2, true, false));

        // Pass mask and cost model dirty decoded and below, not compiled.
        assert_ne!(decoded, decoded_key(compiled, 0b011, 42));
        assert_ne!(decoded, decoded_key(compiled, 0b111, 43));

        // Every unit coordinate matters, and rep None ≠ rep Some(0).
        assert_ne!(unit, unit_key(decoded, 8, 2, Some(0), "native", &[64], None));
        assert_ne!(unit, unit_key(decoded, 7, 4, Some(0), "native", &[64], None));
        assert_ne!(unit, unit_key(decoded, 7, 2, Some(1), "native", &[64], None));
        assert_ne!(unit, unit_key(decoded, 7, 2, None, "native", &[64], None));
        assert_ne!(unit, unit_key(decoded, 7, 2, Some(0), "test", &[64], None));
        assert_ne!(unit, unit_key(decoded, 7, 2, Some(0), "native", &[32], None));
        assert_ne!(unit, unit_key(decoded, 7, 2, Some(0), "native", &[64], Some(50_000)));

        // Aggregate keys see unit order and policy.
        let a = aggregate_key(&[compiled, decoded], "Fixed(3)", "perf_stat");
        assert_ne!(a, aggregate_key(&[decoded, compiled], "Fixed(3)", "perf_stat"));
        assert_ne!(a, aggregate_key(&[compiled, decoded], "Fixed(5)", "perf_stat"));
        assert_ne!(a, aggregate_key(&[compiled, decoded], "Fixed(3)", "time"));
    }

    #[test]
    fn run_payload_round_trips_bit_exact() {
        let run = sample_run();
        let back = run_from_json(&run_to_json(&run)).expect("parses");
        assert_eq!(run, back);
        assert_eq!(run.wall_seconds.to_bits(), back.wall_seconds.to_bits());
    }

    #[test]
    fn store_and_lookup_roundtrip_with_session_accounting() {
        let lab = temp_lab("roundtrip");
        let mut g = ArtifactGraph::open(&lab).unwrap();
        let key = unit_key(Digest(1), 7, 1, Some(0), "native", &[], None);
        assert!(g.lookup_run(&key).is_none());
        assert_eq!((g.hits(), g.misses()), (0, 1));

        let run = sample_run();
        g.store_run(&key, &run).unwrap();
        assert_eq!(g.lookup_run(&key), Some(run.clone()));
        assert_eq!((g.hits(), g.misses()), (1, 1));

        // Storing again is an idempotent no-op.
        g.store_run(&key, &run).unwrap();
        assert_eq!(g.len(), 1);

        // A fresh open replays the index from disk.
        let mut g2 = ArtifactGraph::open(&lab).unwrap();
        assert!(g2.warnings().is_empty());
        assert_eq!(g2.lookup_run(&key), Some(run));
        assert_eq!(g2.node_counts().get(&NodeKind::RunUnit), Some(&1));
        assert!(g2.render_stats().contains("run_unit"));
        let _ = fs::remove_dir_all(&lab);
    }

    #[test]
    fn torn_index_and_payload_degrade_to_misses_not_errors() {
        let lab = temp_lab("torn");
        let mut g = ArtifactGraph::open(&lab).unwrap();
        let key_a = unit_key(Digest(1), 1, 1, None, "native", &[], None);
        let key_b = unit_key(Digest(2), 2, 1, None, "native", &[], None);
        g.store_run(&key_a, &sample_run()).unwrap();
        g.store_run(&key_b, &sample_run()).unwrap();

        // Tear the last index append mid-line.
        let index_path = g.index_path();
        let index = fs::read_to_string(&index_path).unwrap();
        fs::write(&index_path, &index[..index.len() - 9]).unwrap();

        let mut g2 = ArtifactGraph::open(&lab).unwrap();
        assert_eq!(g2.warnings().len(), 1, "{:?}", g2.warnings());
        assert!(g2.lookup_run(&key_a).is_some(), "intact node survives");
        assert!(g2.lookup_run(&key_b).is_none(), "torn entry is a miss");
        // Appends still work after the torn line is sealed.
        g2.store_run(&key_b, &sample_run()).unwrap();
        assert!(ArtifactGraph::open(&lab).unwrap().lookup_run(&key_b).is_some());

        // A torn payload is a miss too, never a panic or error.
        let payload = node_dir_at(g2.root(), &key_a.to_string()).join("payload.json");
        let bytes = fs::read_to_string(&payload).unwrap();
        fs::write(&payload, &bytes[..bytes.len() / 2]).unwrap();
        let mut g3 = ArtifactGraph::open(&lab).unwrap();
        assert!(g3.lookup_run(&key_a).is_none());
        let _ = fs::remove_dir_all(&lab);
    }

    #[test]
    fn seq_is_monotonic_across_reopens() {
        let lab = temp_lab("seq");
        let mut g = ArtifactGraph::open(&lab).unwrap();
        g.store_run(&Digest(10), &sample_run()).unwrap();
        let mut g2 = ArtifactGraph::open(&lab).unwrap();
        g2.store_run(&Digest(11), &sample_run()).unwrap();
        let (entries, _) = ArtifactGraph::scan_at(g2.root());
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        let _ = fs::remove_dir_all(&lab);
    }
}
