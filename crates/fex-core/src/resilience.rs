//! Resilient experiment execution: retry, backoff, quarantine and
//! partial-result bookkeeping.
//!
//! The paper's Fig 4 loop aborts a whole suite run on the first failed
//! repetition; large campaigns need the opposite — per-unit failure
//! isolation. This module supplies the pieces the
//! [`Runner`](crate::runner::Runner) loop threads together:
//!
//! * [`RunPolicy`] — how hard to try: retry count, exponential backoff
//!   (expressed in *simulated* cycles, so resilience costs show up in the
//!   same currency as everything else), an optional per-run instruction
//!   budget (watchdog against hangs), and the failure threshold after
//!   which a benchmark is quarantined.
//! * [`execute_with_retry`] — drives one run action through the policy.
//! * [`QuarantineBook`] — tracks per-benchmark failures and decides when
//!   a benchmark is excluded from the rest of the experiment.
//! * [`FailureReport`] / [`FailureRecord`] — the structured account of
//!   everything that went wrong (and was recovered), written by
//!   [`Fex::run`](crate::Fex::run) next to the result CSV.

use std::collections::HashMap;

use crate::collect::{DataFrame, Value};
use crate::error::{FexError, Result};

/// How the experiment loop responds to failing runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPolicy {
    /// Retries per run action after the first attempt.
    pub max_retries: usize,
    /// Base of the exponential backoff charged (in simulated cycles)
    /// before retry `k`: `backoff_base_cycles << k`.
    pub backoff_base_cycles: u64,
    /// Per-run instruction budget (watchdog): overrides the machine's
    /// `max_instructions` when set, so hangs die quickly instead of
    /// burning the 20-billion-instruction default.
    pub run_budget: Option<u64>,
    /// Failed (retry-exhausted) runs a benchmark may accrue before it is
    /// quarantined — skipped for all remaining types, threads and reps.
    pub failure_threshold: usize,
}

impl Default for RunPolicy {
    /// Two retries with 1M-cycle base backoff, no budget override,
    /// quarantine on the first exhausted failure.
    fn default() -> Self {
        RunPolicy {
            max_retries: 2,
            backoff_base_cycles: 1_000_000,
            run_budget: None,
            failure_threshold: 1,
        }
    }
}

impl RunPolicy {
    /// A policy that never retries and never quarantines: the loop then
    /// behaves exactly like the paper's original Fig 4 loop for run
    /// faults too (first failure is recorded, the benchmark quarantines
    /// immediately at threshold 1 — use [`RunPolicy::strict`] to abort
    /// instead).
    pub fn no_retries() -> Self {
        RunPolicy { max_retries: 0, ..RunPolicy::default() }
    }

    /// Sets the retry count.
    pub fn retries(mut self, n: usize) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the per-run instruction budget (hang watchdog).
    pub fn budget(mut self, instructions: u64) -> Self {
        self.run_budget = Some(instructions);
        self
    }

    /// Sets the quarantine threshold (clamped to at least 1).
    pub fn threshold(mut self, failures: usize) -> Self {
        self.failure_threshold = failures.max(1);
        self
    }

    /// Whether a `retry_index`-th retry (0-based) is still allowed.
    pub fn allows_retry(&self, retry_index: usize) -> bool {
        retry_index < self.max_retries
    }

    /// Simulated backoff cost charged before retry `retry_index`.
    pub fn backoff_cycles(&self, retry_index: usize) -> u64 {
        self.backoff_base_cycles
            .saturating_mul(1u64.checked_shl(retry_index as u32).unwrap_or(u64::MAX))
    }
}

/// What one run action did, retries included.
#[derive(Debug)]
pub struct AttemptLog {
    /// Attempts made (1 = clean first-try success).
    pub attempts: usize,
    /// Total simulated backoff cycles charged between attempts.
    pub backoff_cycles: u64,
    /// Error message of each failed attempt, in order.
    pub errors: Vec<String>,
    /// The final outcome: `Ok` (possibly after retries) or the last
    /// error.
    pub result: Result<()>,
}

impl AttemptLog {
    /// Whether retries turned failure into success.
    pub fn recovered(&self) -> bool {
        self.result.is_ok() && self.attempts > 1
    }
}

/// Drives one run action through the retry policy.
///
/// `action` receives the attempt number (0-based) — the loop feeds it to
/// the machine's fault plan as the retry salt, so injected transient
/// faults re-roll per attempt. Only *run faults* ([`FexError::Run`]) are
/// retried; configuration, lookup and build errors fail fast on the first
/// attempt.
pub fn execute_with_retry(policy: &RunPolicy, action: impl FnMut(u64) -> Result<()>) -> AttemptLog {
    execute_with_retry_value(policy, action).0
}

/// Like [`execute_with_retry`], but the action produces a value.
///
/// Returns the attempt log plus the successful attempt's value (`None`
/// when every attempt failed). The scheduler uses this to carry each run
/// unit's measurement out of the retry loop.
pub fn execute_with_retry_value<T>(
    policy: &RunPolicy,
    mut action: impl FnMut(u64) -> Result<T>,
) -> (AttemptLog, Option<T>) {
    let mut errors = Vec::new();
    let mut backoff_cycles = 0u64;
    let mut retry_index = 0usize;
    loop {
        match action(retry_index as u64) {
            Ok(value) => {
                let log = AttemptLog {
                    attempts: retry_index + 1,
                    backoff_cycles,
                    errors,
                    result: Ok(()),
                };
                return (log, Some(value));
            }
            Err(e) if e.is_run_fault() && policy.allows_retry(retry_index) => {
                errors.push(e.to_string());
                backoff_cycles = backoff_cycles.saturating_add(policy.backoff_cycles(retry_index));
                retry_index += 1;
            }
            Err(e) => {
                errors.push(e.to_string());
                let log = AttemptLog {
                    attempts: retry_index + 1,
                    backoff_cycles,
                    errors,
                    result: Err(e),
                };
                return (log, None);
            }
        }
    }
}

/// Per-benchmark failure bookkeeping and the quarantine decision.
#[derive(Debug)]
pub struct QuarantineBook {
    threshold: usize,
    failures: HashMap<String, usize>,
    quarantined: Vec<String>,
}

impl QuarantineBook {
    /// Creates a book quarantining after `threshold` exhausted failures
    /// (clamped to at least 1).
    pub fn new(threshold: usize) -> Self {
        QuarantineBook {
            threshold: threshold.max(1),
            failures: HashMap::new(),
            quarantined: Vec::new(),
        }
    }

    /// Records one exhausted (post-retry) failure; returns `true` when
    /// this pushes the benchmark into quarantine.
    pub fn record_failure(&mut self, benchmark: &str) -> bool {
        let count = self.failures.entry(benchmark.to_string()).or_insert(0);
        *count += 1;
        if *count >= self.threshold && !self.is_quarantined(benchmark) {
            self.quarantined.push(benchmark.to_string());
            true
        } else {
            false
        }
    }

    /// Whether the benchmark is quarantined.
    pub fn is_quarantined(&self, benchmark: &str) -> bool {
        self.quarantined.iter().any(|b| b == benchmark)
    }

    /// Quarantined benchmarks, in the order they were quarantined.
    pub fn quarantined(&self) -> &[String] {
        &self.quarantined
    }
}

/// How a troubled run ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Failed at least once, then a retry succeeded.
    Recovered,
    /// All retries failed; the run's measurement is missing from the
    /// frame but the benchmark stayed in the experiment.
    Failed,
    /// All retries failed and the failure threshold was reached: the
    /// benchmark is skipped for the rest of the experiment.
    Quarantined,
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Recovered => write!(f, "recovered"),
            RunOutcome::Failed => write!(f, "failed"),
            RunOutcome::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// One troubled run action (a clean success produces no record).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// Build type the run executed under.
    pub build_type: String,
    /// Thread count of the run.
    pub threads: usize,
    /// Repetition index.
    pub rep: usize,
    /// First error message observed.
    pub error: String,
    /// Attempts made (including the final one).
    pub attempts: usize,
    /// How it ended.
    pub outcome: RunOutcome,
}

/// The structured failure account of one experiment.
///
/// `Fex::run` stores it per experiment and writes
/// `/fex/results/<name>.failures.csv` with the schema
/// `benchmark,type,threads,rep,error,attempts,outcome` next to the result
/// CSV.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureReport {
    /// One record per troubled run, in execution order.
    pub records: Vec<FailureRecord>,
    /// Run actions driven (clean successes included).
    pub total_runs: usize,
    /// Attempts made across all run actions (retries included).
    pub total_attempts: usize,
    /// Total simulated backoff cycles charged.
    pub backoff_cycles: u64,
}

/// Column order of [`FailureReport::to_frame`].
pub const FAILURE_COLUMNS: [&str; 7] =
    ["benchmark", "type", "threads", "rep", "error", "attempts", "outcome"];

impl FailureReport {
    /// Accounts for one driven run action.
    pub fn note_run(&mut self, attempts: usize, backoff_cycles: u64) {
        self.total_runs += 1;
        self.total_attempts += attempts;
        self.backoff_cycles = self.backoff_cycles.saturating_add(backoff_cycles);
    }

    /// Appends a troubled-run record.
    pub fn push(&mut self, record: FailureRecord) {
        self.records.push(record);
    }

    /// No failures, no retries.
    pub fn is_clean(&self) -> bool {
        self.records.is_empty()
    }

    /// Extra attempts per driven run: `0.0` means nothing was ever
    /// retried, `0.1` means one retry per ten runs.
    pub fn retry_rate(&self) -> f64 {
        if self.total_runs == 0 {
            0.0
        } else {
            (self.total_attempts - self.total_runs) as f64 / self.total_runs as f64
        }
    }

    /// Benchmarks that ended up quarantined, in order.
    pub fn quarantined_benchmarks(&self) -> Vec<&str> {
        self.records
            .iter()
            .filter(|r| r.outcome == RunOutcome::Quarantined)
            .map(|r| r.benchmark.as_str())
            .collect()
    }

    /// The report as a data frame (schema [`FAILURE_COLUMNS`]).
    pub fn to_frame(&self) -> DataFrame {
        let mut df = DataFrame::new(FAILURE_COLUMNS.to_vec());
        for r in &self.records {
            df.push(vec![
                r.benchmark.as_str().into(),
                r.build_type.as_str().into(),
                (r.threads as i64).into(),
                (r.rep as i64).into(),
                Value::from(r.error.as_str()),
                (r.attempts as i64).into(),
                r.outcome.to_string().as_str().into(),
            ]);
        }
        df
    }

    /// The report as CSV (written alongside the result CSV).
    pub fn to_csv(&self) -> String {
        self.to_frame().to_csv()
    }

    /// One-line summary for the experiment log.
    pub fn summary(&self) -> String {
        let quarantined = self.quarantined_benchmarks();
        format!(
            "resilience: {} runs, {} attempts (retry rate {:.3}), {} failure records, quarantined: {}",
            self.total_runs,
            self.total_attempts,
            self.retry_rate(),
            self.records.len(),
            if quarantined.is_empty() { "none".to_string() } else { quarantined.join(", ") }
        )
    }
}

impl FexError {
    /// Whether this error is a per-run fault — the only class the
    /// resilience layer retries and quarantines; everything else
    /// (configuration, unknown names, build and container errors) fails
    /// the experiment immediately.
    pub fn is_run_fault(&self) -> bool {
        matches!(self, FexError::Run { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_fault(msg: &str) -> FexError {
        FexError::Run {
            benchmark: msg.to_string(),
            build_type: "gcc_native".to_string(),
            source: fex_vm::VmError::Trap(fex_vm::Trap::DivByZero),
        }
    }

    #[test]
    fn clean_success_needs_one_attempt_and_no_backoff() {
        let log = execute_with_retry(&RunPolicy::default(), |_| Ok(()));
        assert_eq!(log.attempts, 1);
        assert_eq!(log.backoff_cycles, 0);
        assert!(log.result.is_ok() && !log.recovered() && log.errors.is_empty());
    }

    #[test]
    fn transient_failures_recover_within_the_retry_budget() {
        let policy = RunPolicy::default().retries(3);
        let mut calls = 0;
        let log = execute_with_retry(&policy, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(run_fault("flaky"))
            } else {
                Ok(())
            }
        });
        assert_eq!(calls, 3);
        assert_eq!(log.attempts, 3);
        assert!(log.recovered());
        assert_eq!(log.errors.len(), 2);
        // Backoff is exponential: base + 2*base.
        assert_eq!(log.backoff_cycles, 1_000_000 + 2_000_000);
    }

    #[test]
    fn persistent_failures_exhaust_retries() {
        let policy = RunPolicy::default().retries(2);
        let mut calls = 0;
        let log = execute_with_retry(&policy, |_| {
            calls += 1;
            Err(run_fault("broken"))
        });
        assert_eq!(calls, 3, "first attempt + 2 retries");
        assert!(log.result.is_err());
        assert_eq!(log.errors.len(), 3);
    }

    #[test]
    fn non_run_errors_fail_fast() {
        let policy = RunPolicy::default().retries(5);
        let mut calls = 0;
        let log = execute_with_retry(&policy, |_| {
            calls += 1;
            Err(FexError::Config("bad".into()))
        });
        assert_eq!(calls, 1, "config errors must not be retried");
        assert!(matches!(log.result, Err(FexError::Config(_))));
    }

    #[test]
    fn attempt_numbers_feed_the_fault_salt() {
        let mut seen = Vec::new();
        let _ = execute_with_retry(&RunPolicy::default().retries(2), |attempt| {
            seen.push(attempt);
            Err(run_fault("x"))
        });
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn retry_with_value_carries_the_successful_payload() {
        let policy = RunPolicy::default().retries(2);
        let (log, value) = execute_with_retry_value(&policy, |attempt| {
            if attempt == 0 {
                Err(run_fault("flaky"))
            } else {
                Ok(attempt * 10)
            }
        });
        assert!(log.recovered());
        assert_eq!(value, Some(10));

        let (log, value) = execute_with_retry_value::<u64>(&policy, |_| Err(run_fault("broken")));
        assert!(log.result.is_err());
        assert!(value.is_none());
    }

    #[test]
    fn backoff_growth_is_exponential_and_saturating() {
        let p = RunPolicy { backoff_base_cycles: 1 << 62, ..RunPolicy::default() };
        assert_eq!(p.backoff_cycles(0), 1 << 62);
        assert_eq!(p.backoff_cycles(1), 1 << 63);
        assert_eq!(p.backoff_cycles(2), u64::MAX, "must saturate, not wrap");
        assert_eq!(p.backoff_cycles(100), u64::MAX);
    }

    #[test]
    fn quarantine_fires_at_the_threshold() {
        let mut book = QuarantineBook::new(2);
        assert!(!book.record_failure("fft"));
        assert!(!book.is_quarantined("fft"));
        assert!(book.record_failure("fft"), "second failure hits threshold 2");
        assert!(book.is_quarantined("fft"));
        // Further failures don't re-announce.
        assert!(!book.record_failure("fft"));
        assert_eq!(book.quarantined(), &["fft".to_string()]);
        assert!(!book.is_quarantined("lu"));
    }

    #[test]
    fn zero_threshold_clamps_to_one() {
        let mut book = QuarantineBook::new(0);
        assert!(book.record_failure("x"), "threshold 0 behaves like 1");
    }

    #[test]
    fn report_accounting_and_csv_schema() {
        let mut report = FailureReport::default();
        report.note_run(1, 0);
        report.note_run(3, 3_000_000);
        report.note_run(2, 1_000_000);
        report.push(FailureRecord {
            benchmark: "fft".into(),
            build_type: "gcc_asan".into(),
            threads: 4,
            rep: 1,
            error: "vm trap: injected fault (attempt 2)".into(),
            attempts: 3,
            outcome: RunOutcome::Quarantined,
        });
        assert!(!report.is_clean());
        assert!((report.retry_rate() - 1.0).abs() < 1e-9, "3 extra attempts / 3 runs");
        assert_eq!(report.quarantined_benchmarks(), vec!["fft"]);
        let csv = report.to_csv();
        assert!(csv.starts_with("benchmark,type,threads,rep,error,attempts,outcome"));
        assert!(csv.contains("fft,gcc_asan,4,1,"));
        assert!(csv.contains("quarantined"));
        assert!(report.summary().contains("quarantined: fft"));
    }

    #[test]
    fn empty_report_is_clean_with_zero_retry_rate() {
        let report = FailureReport::default();
        assert!(report.is_clean());
        assert_eq!(report.retry_rate(), 0.0);
        assert_eq!(report.to_frame().len(), 0);
        assert!(report.summary().contains("quarantined: none"));
    }
}
