//! Installation scripts (§II-A, the `install/` directory).
//!
//! The framework ships scripts for compilers, dependencies and additional
//! benchmarks; each resolves to pinned package versions in the simulated
//! registry — Fex "cannot rely on Linux default package managers …
//! because compiler versions in their repositories change over time and
//! thus hinder reproducibility".

use fex_container::{Container, PackageRegistry};

use crate::error::{FexError, Result};

/// The install-script categories (the three `install/` subdirectories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScriptKind {
    /// `install/compilers/`.
    Compiler,
    /// `install/dependencies/`.
    Dependency,
    /// `install/benchmarks/`.
    Benchmark,
}

/// One installation script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallScript {
    /// Script name (`fex install -n <name>`).
    pub name: &'static str,
    /// Category.
    pub kind: ScriptKind,
    /// Packages this script installs, `(name, version)`.
    pub packages: Vec<(&'static str, &'static str)>,
}

/// All shipped install scripts.
pub fn scripts() -> Vec<InstallScript> {
    use ScriptKind::*;
    let s = |name, kind, packages: &[(&'static str, &'static str)]| InstallScript {
        name,
        kind,
        packages: packages.to_vec(),
    };
    vec![
        s("gcc-6.1", Compiler, &[("gcc", "6.1.0")]),
        s("gcc-5.4", Compiler, &[("gcc", "5.4.0")]),
        s("clang-3.8", Compiler, &[("clang", "3.8.0")]),
        s("clang-3.9", Compiler, &[("clang", "3.9.1")]),
        s("gettext", Dependency, &[("gettext", "0.19")]),
        s("libevent", Dependency, &[("libevent", "2.0.22")]),
        s("openssl", Dependency, &[("openssl", "1.0.2g")]),
        s("perf", Dependency, &[("perf", "4.4")]),
        s("phoenix_inputs", Dependency, &[("phoenix_inputs", "1.0")]),
        s("splash_inputs", Dependency, &[("splash_inputs", "3.0")]),
        s("parsec_inputs", Dependency, &[("parsec_inputs", "3.0")]),
        s("apache", Benchmark, &[("apache", "2.4.18")]),
        s("apache-vulnerable", Benchmark, &[("apache", "2.2.21")]),
        s("nginx", Benchmark, &[("nginx", "1.10.1")]),
        s("nginx-vulnerable", Benchmark, &[("nginx", "1.4.0")]),
        s("memcached", Benchmark, &[("memcached", "1.4.25")]),
        s("ripe", Benchmark, &[("ripe", "2015.04")]),
    ]
}

/// Looks a script up by name.
pub fn script(name: &str) -> Option<InstallScript> {
    scripts().into_iter().find(|s| s.name == name)
}

/// Executes a script against a container.
///
/// # Errors
///
/// [`FexError::UnknownName`] for unregistered scripts and container errors
/// for version conflicts / missing packages.
pub fn run_script(container: &mut Container, registry: &PackageRegistry, name: &str) -> Result<()> {
    let script = script(name)
        .ok_or_else(|| FexError::UnknownName { kind: "install script", name: name.to_string() })?;
    for (pkg, version) in &script.packages {
        container.install(registry, pkg, version)?;
    }
    Ok(())
}

/// The install scripts an experiment needs before `fex run` will work:
/// compilers for the requested build types plus per-experiment inputs or
/// server packages.
pub fn required_scripts(experiment: &str, build_types: &[String]) -> Vec<&'static str> {
    let mut out = Vec::new();
    for ty in build_types {
        if ty.starts_with("gcc") && !out.contains(&"gcc-6.1") {
            out.push("gcc-6.1");
        }
        if ty.starts_with("clang") && !out.contains(&"clang-3.8") {
            out.push("clang-3.8");
        }
    }
    match experiment {
        "phoenix" | "phoenix_var" => out.push("phoenix_inputs"),
        "splash" => out.push("splash_inputs"),
        "parsec" | "parsec_var" => out.push("parsec_inputs"),
        "nginx" => out.push("nginx"),
        "apache" => out.push("apache"),
        "memcached" => out.push("memcached"),
        "ripe" => out.push("ripe"),
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fex_container::Image;

    #[test]
    fn scripts_resolve_against_the_standard_registry() {
        // Alternate-version scripts conflict with each other by design, so
        // each script is validated in its own clean container.
        let registry = PackageRegistry::standard();
        for s in scripts() {
            let mut c = Container::start(&Image::fex_shipping_image());
            run_script(&mut c, &registry, s.name)
                .unwrap_or_else(|e| panic!("script {} failed: {e}", s.name));
            for (pkg, version) in &s.packages {
                assert!(c.installed(pkg, version), "{}: {pkg} {version} missing", s.name);
            }
        }
    }

    #[test]
    fn unknown_scripts_are_reported() {
        let registry = PackageRegistry::standard();
        let mut c = Container::start(&Image::fex_shipping_image());
        assert!(matches!(
            run_script(&mut c, &registry, "gcc-99"),
            Err(FexError::UnknownName { .. })
        ));
    }

    #[test]
    fn conflicting_scripts_fail_loudly() {
        let registry = PackageRegistry::standard();
        let mut c = Container::start(&Image::fex_shipping_image());
        run_script(&mut c, &registry, "nginx").unwrap();
        // The vulnerable version conflicts with the fixed one.
        assert!(run_script(&mut c, &registry, "nginx-vulnerable").is_err());
    }

    #[test]
    fn required_scripts_cover_the_paper_workflow() {
        // The paper's example: install gcc-6.1, phoenix inputs, apache.
        let req = required_scripts("phoenix", &["gcc_native".into(), "gcc_asan".into()]);
        assert_eq!(req, vec!["gcc-6.1", "phoenix_inputs"]);
        let req = required_scripts("nginx", &["gcc_native".into(), "clang_native".into()]);
        assert_eq!(req, vec!["gcc-6.1", "clang-3.8", "nginx"]);
    }
}
