//! Command-line parsing for the `fex` binary, mirroring `fex.py`:
//!
//! ```text
//! fex install -n gcc-6.1
//! fex run -n phoenix -t gcc_native gcc_asan [-b histogram] [-m 1 2 4]
//!         [-r 10] [-i test] [-v] [-d] [--no-build] [--tool time]
//! fex plot -n phoenix -t perf
//! fex list
//! fex report
//! ```

use fex_suites::InputSize;
use fex_vm::MeasureTool;

use crate::config::ExperimentConfig;
use crate::error::{FexError, Result};
use crate::workflow::PlotRequest;

/// A parsed CLI action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `fex install -n <name>` (repeatable names).
    Install {
        /// Script names.
        names: Vec<String>,
    },
    /// `fex run …`.
    Run(Box<ExperimentConfig>),
    /// `fex plot -n <name> -t <kind>`.
    Plot {
        /// Experiment name.
        name: String,
        /// Plot kind.
        request: PlotRequest,
    },
    /// `fex test -n <suite>` — tiny-input self-checks (§III-A).
    SelfTest {
        /// Suite name.
        name: String,
    },
    /// `fex list`.
    List,
    /// `fex report [journal]`: with a path, render that run journal's
    /// phase/time breakdown and per-unit timeline; bare, print the
    /// support matrix + environment.
    Report {
        /// Path to a `journal.jsonl` to render.
        journal: Option<String>,
    },
}

/// Usage text.
pub const USAGE: &str = "\
usage: fex <action> [options]

actions:
  install -n <script>...          install compilers/dependencies/benchmarks
  run     -n <experiment> [opts]  build + run + collect an experiment
  plot    -n <experiment> -t <perf|tlat|scaling|cache|mem>
  test    -n <suite>              tiny-input self-checks across all types
  list                            list registered experiments
  report [journal.jsonl]          render a run journal (phase breakdown +
                                  per-unit timeline); bare: print the
                                  support matrix + environment

run options:
  -t <type>...   build types (default gcc_native)
  -b <name>      single benchmark
  -m <n>...      thread counts (default 1)
  -r <n>         repetitions (default 1)
  -i <size>      input size: test | small | native (default native)
  --tool <t>     perf-stat | perf-stat-mem | time (default perf-stat)
  -v             verbose
  -d             debug builds
  --no-build     reuse cached binaries
  --jobs <n>     parallel run-unit workers; 0 = auto
                 (default: available cores, capped at 16)
  --no-journal   skip the structured run journal (journal.jsonl +
                 metrics.json); result CSVs are identical either way

debug escape hatches (measured results are identical either way):
  --no-fusion        disable VM superinstruction fusion
  --no-mru           disable the cache simulator's MRU fast path
  --no-decode-cache  re-decode programs on every run unit
";

/// Parses `args` (without the program name).
///
/// # Errors
///
/// [`FexError::Config`] with a message suitable for printing alongside
/// [`USAGE`].
pub fn parse(args: &[String]) -> Result<Action> {
    let mut it = args.iter().peekable();
    let action = it.next().ok_or_else(|| FexError::Config("missing action".into()))?;
    match action.as_str() {
        "list" => Ok(Action::List),
        "test" => {
            let mut name = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "-n" => name = it.next().cloned(),
                    other => return Err(FexError::Config(format!("unknown test flag `{other}`"))),
                }
            }
            let name = name.ok_or_else(|| FexError::Config("test needs -n <suite>".into()))?;
            Ok(Action::SelfTest { name })
        }
        "report" => {
            let journal = it.next().cloned();
            if let Some(extra) = it.next() {
                return Err(FexError::Config(format!("unexpected report argument `{extra}`")));
            }
            Ok(Action::Report { journal })
        }
        "install" => {
            let names = take_values(&mut it, "-n")?;
            if names.is_empty() {
                return Err(FexError::Config("install needs -n <script>".into()));
            }
            Ok(Action::Install { names })
        }
        "plot" => {
            let mut name = None;
            let mut kind = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "-n" => name = it.next().cloned(),
                    "-t" => kind = it.next().cloned(),
                    other => return Err(FexError::Config(format!("unknown plot flag `{other}`"))),
                }
            }
            let name = name.ok_or_else(|| FexError::Config("plot needs -n <name>".into()))?;
            let kind = kind.ok_or_else(|| FexError::Config("plot needs -t <kind>".into()))?;
            let request = PlotRequest::parse(&kind)
                .ok_or_else(|| FexError::Config(format!("unknown plot kind `{kind}`")))?;
            Ok(Action::Plot { name, request })
        }
        "run" => {
            let mut name: Option<String> = None;
            let mut config_types: Vec<String> = Vec::new();
            let mut threads: Vec<usize> = Vec::new();
            let mut cfg = ExperimentConfig::new("");
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "-n" => name = it.next().cloned(),
                    "-t" => config_types = collect_bare(&mut it),
                    "-m" => {
                        threads = collect_bare(&mut it)
                            .iter()
                            .map(|s| {
                                s.parse::<usize>().map_err(|_| {
                                    FexError::Config(format!("bad thread count `{s}`"))
                                })
                            })
                            .collect::<Result<_>>()?;
                    }
                    "-b" => {
                        cfg.benchmark = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| FexError::Config("-b needs a benchmark".into()))?,
                        )
                    }
                    "-r" => {
                        let v =
                            it.next().ok_or_else(|| FexError::Config("-r needs a count".into()))?;
                        cfg.repetitions = v
                            .parse()
                            .map_err(|_| FexError::Config(format!("bad repetitions `{v}`")))?;
                    }
                    "-i" => {
                        let v =
                            it.next().ok_or_else(|| FexError::Config("-i needs a size".into()))?;
                        cfg.input = match v.as_str() {
                            "test" => InputSize::Test,
                            "small" => InputSize::Small,
                            "native" => InputSize::Native,
                            other => {
                                return Err(FexError::Config(format!(
                                    "unknown input size `{other}`"
                                )))
                            }
                        };
                    }
                    "--tool" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--tool needs a name".into()))?;
                        cfg.tool = match v.as_str() {
                            "perf-stat" => MeasureTool::PerfStat,
                            "perf-stat-mem" => MeasureTool::PerfStatMemory,
                            "time" => MeasureTool::Time,
                            other => {
                                return Err(FexError::Config(format!("unknown tool `{other}`")))
                            }
                        };
                    }
                    "-v" => cfg.verbose = true,
                    "-d" => cfg.debug = true,
                    "--no-build" => cfg.no_build = true,
                    "--jobs" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--jobs needs a count".into()))?;
                        cfg.jobs = v
                            .parse()
                            .map_err(|_| FexError::Config(format!("bad job count `{v}`")))?;
                    }
                    "--no-fusion" => cfg.fusion = false,
                    "--no-mru" => cfg.mru_fast_path = false,
                    "--no-decode-cache" => cfg.decode_cache = false,
                    "--no-journal" => cfg.journal = false,
                    other => return Err(FexError::Config(format!("unknown run flag `{other}`"))),
                }
            }
            cfg.name = name.ok_or_else(|| FexError::Config("run needs -n <experiment>".into()))?;
            if !config_types.is_empty() {
                cfg.build_types = config_types;
            }
            if !threads.is_empty() {
                cfg.threads = threads;
            }
            cfg.validate()?;
            Ok(Action::Run(Box::new(cfg)))
        }
        other => Err(FexError::Config(format!("unknown action `{other}`"))),
    }
}

/// Collects the values following a flag until the next `-`-prefixed token.
fn collect_bare(it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>) -> Vec<String> {
    let mut out = Vec::new();
    while let Some(next) = it.peek() {
        if next.starts_with('-') {
            break;
        }
        out.push(it.next().expect("peeked").clone());
    }
    out
}

fn take_values(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    flag: &str,
) -> Result<Vec<String>> {
    let mut out = Vec::new();
    while let Some(next) = it.next() {
        if next == flag {
            out.extend(collect_bare(it));
        } else {
            return Err(FexError::Config(format!("unexpected `{next}`")));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_the_papers_example_invocations() {
        // ">> fex.py run -n phoenix -t gcc_native"
        let Action::Run(cfg) = parse(&argv("run -n phoenix -t gcc_native")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.name, "phoenix");
        assert_eq!(cfg.build_types, vec!["gcc_native"]);

        // ">> fex.py run -n splash -t gcc_native clang_native"
        let Action::Run(cfg) = parse(&argv("run -n splash -t gcc_native clang_native")).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(cfg.build_types.len(), 2);

        // ">> fex.py install -n gcc-6.1"
        assert_eq!(
            parse(&argv("install -n gcc-6.1")).unwrap(),
            Action::Install { names: vec!["gcc-6.1".into()] }
        );

        // ">> fex.py plot -n phoenix -t perf"
        assert_eq!(
            parse(&argv("plot -n phoenix -t perf")).unwrap(),
            Action::Plot { name: "phoenix".into(), request: PlotRequest::Perf }
        );
    }

    #[test]
    fn parses_all_run_flags() {
        let Action::Run(cfg) = parse(&argv(
            "run -n phoenix -t gcc_native gcc_asan -b histogram -m 1 2 4 -r 10 -i test -v -d --no-build --tool time --jobs 4 --no-fusion --no-mru --no-decode-cache",
        ))
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.benchmark.as_deref(), Some("histogram"));
        assert_eq!(cfg.threads, vec![1, 2, 4]);
        assert_eq!(cfg.repetitions, 10);
        assert!(cfg.verbose && cfg.debug && cfg.no_build);
        assert_eq!(cfg.tool, MeasureTool::Time);
        assert_eq!(cfg.jobs, 4);
        assert!(!cfg.fusion && !cfg.mru_fast_path && !cfg.decode_cache);
    }

    #[test]
    fn hot_path_optimisations_are_on_by_default() {
        let Action::Run(cfg) = parse(&argv("run -n micro")).unwrap() else {
            panic!("expected run");
        };
        assert!(cfg.fusion && cfg.mru_fast_path && cfg.decode_cache);
    }

    #[test]
    fn jobs_flag_defaults_to_auto_and_rejects_garbage() {
        let Action::Run(cfg) = parse(&argv("run -n micro")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.jobs, 0, "auto by default");
        let Action::Run(cfg) = parse(&argv("run -n micro --jobs 0")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.jobs, 0, "explicit auto");
        assert!(parse(&argv("run -n micro --jobs")).is_err());
        assert!(parse(&argv("run -n micro --jobs many")).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run -t gcc_native")).is_err(), "missing -n");
        assert!(parse(&argv("run -n x -m zero")).is_err());
        assert!(parse(&argv("plot -n x -t sparkline")).is_err());
        assert!(parse(&argv("run -n x -i huge")).is_err());
        assert!(parse(&argv("install")).is_err());
    }

    #[test]
    fn list_and_report_are_bare() {
        assert_eq!(parse(&argv("list")).unwrap(), Action::List);
        assert_eq!(parse(&argv("report")).unwrap(), Action::Report { journal: None });
    }

    #[test]
    fn report_takes_an_optional_journal_path() {
        assert_eq!(
            parse(&argv("report target/fex-results/micro.journal.jsonl")).unwrap(),
            Action::Report { journal: Some("target/fex-results/micro.journal.jsonl".into()) }
        );
        assert!(parse(&argv("report a.jsonl b.jsonl")).is_err(), "at most one journal");
    }

    #[test]
    fn journal_is_on_by_default_with_an_escape_hatch() {
        let Action::Run(cfg) = parse(&argv("run -n micro")).unwrap() else {
            panic!("expected run");
        };
        assert!(cfg.journal);
        let Action::Run(cfg) = parse(&argv("run -n micro --no-journal")).unwrap() else {
            panic!("expected run");
        };
        assert!(!cfg.journal);
    }
}
