//! Command-line parsing for the `fex` binary, mirroring `fex.py`:
//!
//! ```text
//! fex install -n gcc-6.1
//! fex run -n phoenix -t gcc_native gcc_asan [-b histogram] [-m 1 2 4]
//!         [-r 10] [-i test] [-v] [-d] [--no-build] [--tool time]
//! fex plot -n phoenix -t perf
//! fex list
//! fex report
//! ```

use fex_suites::InputSize;
use fex_vm::{MeasureTool, PassMask};

use crate::config::{ExperimentConfig, Repetitions};
use crate::error::{FexError, Result};
use crate::workflow::PlotRequest;

/// A parsed CLI action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `fex install -n <name>` (repeatable names).
    Install {
        /// Script names.
        names: Vec<String>,
    },
    /// `fex run …`.
    Run(Box<ExperimentConfig>),
    /// `fex plot -n <name> -t <kind>`.
    Plot {
        /// Experiment name.
        name: String,
        /// Plot kind.
        request: PlotRequest,
    },
    /// `fex test -n <suite>` — tiny-input self-checks (§III-A).
    SelfTest {
        /// Suite name.
        name: String,
    },
    /// `fex list`.
    List,
    /// `fex report [journal]`: with a path, render that run journal's
    /// phase/time breakdown and per-unit timeline; bare, print the
    /// support matrix + environment.
    Report {
        /// Path to a `journal.jsonl` to render.
        journal: Option<String>,
    },
    /// `fex lab <list|show|gc>`: inspect the on-disk run store.
    Lab {
        /// Subcommand.
        cmd: LabCommand,
        /// Store directory (`--lab`, default `.fex-lab`).
        dir: String,
    },
    /// `fex fuzz [--seed S] [--cases N]`: seeded scenario fuzzing of the
    /// whole pipeline against the invariant oracle, or
    /// `--regressions <file>` to replay committed seeds.
    Fuzz {
        /// Fuzzing options (seed, case count, bundle dir, shrink cap).
        opts: crate::fuzz::FuzzOptions,
        /// Replay a `<seed> <case>` regression file instead of fuzzing.
        regressions: Option<String>,
    },
    /// `fex graph stats`: per-kind node counts and size of the
    /// content-addressed artifact graph inside a lab directory.
    Graph {
        /// Lab directory holding the graph (`--lab`, default
        /// `.fex-lab`).
        dir: String,
    },
    /// `fex compare <baseline> <candidate>`: per-benchmark Welch's
    /// t-test with a verdict table and comparison plots.
    Compare {
        /// Baseline selector: a CSV path, a run-id prefix, `latest` or
        /// `prev`.
        baseline: String,
        /// Candidate selector, same forms.
        candidate: String,
        /// Store directory selectors resolve in (`--lab`).
        dir: String,
        /// Metric column compared (`--metric`, default `time`).
        metric: String,
        /// Where the SVG comparison plot is written (`--svg`).
        svg: Option<String>,
    },
    /// `fex serve`: run the multi-tenant experiment daemon until a
    /// client sends `{"op": "shutdown"}`.
    Serve {
        /// Daemon options (socket path, lab dir, worker count, queue
        /// capacity).
        opts: crate::serve::ServeOptions,
    },
    /// `fex diag [journal] [--lab [dir]]`: run the diagnostics rule
    /// registry over a journal and/or the lab store. Exits 2 on any
    /// error-severity finding, 1 on unreadable input, 0 otherwise.
    Diag {
        /// Journal path to audit.
        journal: Option<String>,
        /// Lab store to audit (`--lab`, optional value, default
        /// `.fex-lab`).
        lab: Option<String>,
        /// Output format (`--format`, default human).
        format: crate::diag::DiagFormat,
        /// Explicit config file (`--config`); default: `fex.toml` in the
        /// working directory when present.
        config: Option<String>,
        /// Rule-evaluation workers (`--jobs`, 0 = auto).
        jobs: usize,
        /// Allow-list override (`--rules`, comma-separated ids).
        rules: Vec<String>,
        /// Deny-list additions (`--deny`, comma-separated ids).
        deny: Vec<String>,
    },
}

/// A `fex lab` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum LabCommand {
    /// `fex lab list`: one line per archived run.
    List {
        /// Emit one flat-JSON object per line instead of the table.
        json: bool,
    },
    /// `fex lab show <selector>`: summary statistics of one run.
    Show {
        /// Run-id prefix, `latest` or `prev`.
        selector: String,
    },
    /// `fex lab gc --keep <n>`: drop all but the newest `n` runs per
    /// experiment key.
    Gc {
        /// Runs kept per key.
        keep: usize,
    },
    /// `fex lab fsck [--quarantine]`: check store integrity; with
    /// `--quarantine`, move damaged runs aside and rewrite the index.
    Fsck {
        /// Repair mode: quarantine damaged runs instead of just
        /// reporting.
        quarantine: bool,
    },
}

/// Usage text.
pub const USAGE: &str = "\
usage: fex <action> [options]

actions:
  install -n <script>...          install compilers/dependencies/benchmarks
  run     -n <experiment> [opts]  build + run + collect an experiment
  plot    -n <experiment> -t <perf|tlat|scaling|cache|mem>
  test    -n <suite>              tiny-input self-checks across all types
  list                            list registered experiments
  report [journal.jsonl]          render a run journal (phase breakdown +
                                  per-unit timeline); bare: print the
                                  support matrix + environment
  lab <list|show|gc|fsck>         inspect / repair the result store
  graph stats                     artifact-graph node counts (incremental
                                  evaluation cache inside the lab)
  compare <baseline> <candidate>  per-benchmark Welch's t-test between two
                                  runs; exits 2 on significant regression
  fuzz [opts]                     seeded scenario fuzzing with an invariant
                                  oracle; exits 1 on an oracle violation
  serve [opts]                    multi-tenant experiment daemon on a local
                                  socket; identical submissions are served
                                  from the shared graph/store cache
  diag [journal] [--lab [dir]]    audit a run journal and/or the lab store
                                  with the diagnostics rule registry;
                                  exits 2 on an error-severity finding

run options:
  -t <type>...   build types (default gcc_native)
  -b <name>      single benchmark
  -m <n>...      thread counts (default 1)
  -r <n>         repetitions (default 1; with --adaptive: the minimum)
  --adaptive <pct>  adaptive repetitions: repeat each cell until the 95%
                 CI half-width is <= pct% of the mean, or --max-reps
  --max-reps <n> adaptive repetition budget per cell (default 16)
  -i <size>      input size: test | small | native (default native)
  --tool <t>     perf-stat | perf-stat-mem | time (default perf-stat)
  -v             verbose
  -d             debug builds
  --no-build     reuse cached binaries
  --jobs <n>     parallel run-unit workers; 0 = auto
                 (default: available cores, capped at 16)
  --chunk <n>    units each worker claims per grab; 0 = auto
                 (tuned from the matrix width)
  --no-journal   skip the structured run journal (journal.jsonl +
                 metrics.json); result CSVs are identical either way
  --lab [dir]    archive results into the run store (default .fex-lab)
  --no-graph     skip the artifact graph: execute every run unit even
                 when its cached result is bit-identical (results are
                 the same either way; warm re-runs just get slower)

lab / compare options:
  --lab <dir>    result store directory (default .fex-lab)
  --json         lab list: one flat-JSON object per line instead of the
                 table (fields + the repro score, CI-consumable)
  --keep <n>     lab gc: runs kept per experiment key (default 1)
  --quarantine   lab fsck: move damaged runs aside and rewrite the index
  --metric <m>   compare: metric column to test (default time)
  --svg <path>   compare: write the SVG comparison plot here
                 (default target/fex-results/compare.svg)

fuzz options:
  --seed <n>          master seed (default 42)
  --cases <n>         scenarios to generate and check (default 25)
  --bundle <dir>      repro bundle directory (default target/fex-fuzz)
  --max-shrink <n>    shrink-candidate evaluation cap (default 48)
  --regressions <f>   replay `<seed> <case>` lines from a file instead

serve options:
  --socket <path>  Unix socket to listen on (default .fex-serve.sock)
  --lab <dir>      shared store + artifact graph (default .fex-lab)
  --workers <n>    worker threads draining the queue (default 2)
  --queue <n>      bounded queue capacity; overflow submissions are
                   refused and journaled as evictions (default 64)

diag options:
  --lab [dir]      audit this lab store (default .fex-lab); history rules
                   (regression, cache drop) need at least two stored runs
  --format <f>     human | sarif | github (default human)
  --config <path>  read [diag] presets/thresholds from this fex.toml
                   (default: ./fex.toml when present)
  --rules <ids>    comma-separated allow-list; only these rules run
  --deny <ids>     comma-separated deny-list; these rules never run
  --jobs <n>       rule-evaluation workers, 0 = auto (output is identical
                   for every value)

compare selectors are CSV paths, archived run-id prefixes, `latest`, or
`prev` (the two newest store entries).

debug escape hatches (measured results are identical either way):
  --passes <list>    decode pass pipeline subset, comma-separated in
                     pipeline order (trace,fuse,immfold), or all/none
  --no-pass <name>   drop one pass from the pipeline (repeatable)
  --no-fusion        disable the whole pass pipeline (= --passes none)
  --no-mru           disable the cache simulator's MRU fast path
  --no-decode-cache  re-decode programs on every run unit
";

/// Parses `args` (without the program name).
///
/// # Errors
///
/// [`FexError::Config`] with a message suitable for printing alongside
/// [`USAGE`].
pub fn parse(args: &[String]) -> Result<Action> {
    let mut it = args.iter().peekable();
    let action = it.next().ok_or_else(|| FexError::Config("missing action".into()))?;
    match action.as_str() {
        "list" => Ok(Action::List),
        "test" => {
            let mut name = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "-n" => name = it.next().cloned(),
                    other => return Err(FexError::Config(format!("unknown test flag `{other}`"))),
                }
            }
            let name = name.ok_or_else(|| FexError::Config("test needs -n <suite>".into()))?;
            Ok(Action::SelfTest { name })
        }
        "report" => {
            let journal = it.next().cloned();
            if let Some(extra) = it.next() {
                return Err(FexError::Config(format!("unexpected report argument `{extra}`")));
            }
            Ok(Action::Report { journal })
        }
        "lab" => {
            let sub = it.next().cloned().ok_or_else(|| {
                FexError::Config("lab needs a subcommand: list | show | gc | fsck".into())
            })?;
            let mut dir = String::from(".fex-lab");
            let mut keep: Option<usize> = None;
            let mut quarantine = false;
            let mut json = false;
            let mut positional: Vec<String> = Vec::new();
            while let Some(tok) = it.next() {
                match tok.as_str() {
                    "--quarantine" => quarantine = true,
                    "--json" => json = true,
                    "--lab" => {
                        dir = it
                            .next()
                            .cloned()
                            .ok_or_else(|| FexError::Config("--lab needs a directory".into()))?;
                    }
                    "--keep" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--keep needs a count".into()))?;
                        keep = Some(
                            v.parse()
                                .map_err(|_| FexError::Config(format!("bad keep count `{v}`")))?,
                        );
                    }
                    other if !other.starts_with('-') => positional.push(other.to_string()),
                    other => return Err(FexError::Config(format!("unknown lab flag `{other}`"))),
                }
            }
            let cmd = match sub.as_str() {
                "list" => LabCommand::List { json },
                "show" => {
                    let selector = positional
                        .pop()
                        .ok_or_else(|| FexError::Config("lab show needs a run selector".into()))?;
                    LabCommand::Show { selector }
                }
                "gc" => LabCommand::Gc { keep: keep.unwrap_or(1) },
                "fsck" => LabCommand::Fsck { quarantine },
                other => return Err(FexError::Config(format!("unknown lab subcommand `{other}`"))),
            };
            if !positional.is_empty() {
                return Err(FexError::Config(format!("unexpected `{}`", positional[0])));
            }
            Ok(Action::Lab { cmd, dir })
        }
        "graph" => {
            let sub = it
                .next()
                .cloned()
                .ok_or_else(|| FexError::Config("graph needs a subcommand: stats".into()))?;
            if sub != "stats" {
                return Err(FexError::Config(format!("unknown graph subcommand `{sub}`")));
            }
            let mut dir = String::from(".fex-lab");
            while let Some(tok) = it.next() {
                match tok.as_str() {
                    "--lab" => {
                        dir = it
                            .next()
                            .cloned()
                            .ok_or_else(|| FexError::Config("--lab needs a directory".into()))?;
                    }
                    other => return Err(FexError::Config(format!("unknown graph flag `{other}`"))),
                }
            }
            Ok(Action::Graph { dir })
        }
        "fuzz" => {
            let mut opts = crate::fuzz::FuzzOptions::default();
            let mut regressions = None;
            while let Some(tok) = it.next() {
                let value = |it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
                             flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| FexError::Config(format!("{flag} needs a value")))
                };
                match tok.as_str() {
                    "--seed" => {
                        let v = value(&mut it, "--seed")?;
                        opts.seed =
                            v.parse().map_err(|_| FexError::Config(format!("bad seed `{v}`")))?;
                    }
                    "--cases" => {
                        let v = value(&mut it, "--cases")?;
                        opts.cases = v
                            .parse()
                            .map_err(|_| FexError::Config(format!("bad case count `{v}`")))?;
                    }
                    "--bundle" => opts.bundle_dir = value(&mut it, "--bundle")?.into(),
                    "--max-shrink" => {
                        let v = value(&mut it, "--max-shrink")?;
                        opts.max_shrink = v
                            .parse()
                            .map_err(|_| FexError::Config(format!("bad shrink cap `{v}`")))?;
                    }
                    "--regressions" => regressions = Some(value(&mut it, "--regressions")?),
                    other => return Err(FexError::Config(format!("unknown fuzz flag `{other}`"))),
                }
            }
            Ok(Action::Fuzz { opts, regressions })
        }
        "serve" => {
            let mut opts = crate::serve::ServeOptions::default();
            while let Some(tok) = it.next() {
                let value = |it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
                             flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| FexError::Config(format!("{flag} needs a value")))
                };
                match tok.as_str() {
                    "--socket" => opts.socket = value(&mut it, "--socket")?.into(),
                    "--lab" => opts.lab = value(&mut it, "--lab")?,
                    "--workers" => {
                        let v = value(&mut it, "--workers")?;
                        opts.workers = v
                            .parse()
                            .map_err(|_| FexError::Config(format!("bad worker count `{v}`")))?;
                    }
                    "--queue" => {
                        let v = value(&mut it, "--queue")?;
                        opts.queue_cap = v
                            .parse()
                            .map_err(|_| FexError::Config(format!("bad queue capacity `{v}`")))?;
                    }
                    other => return Err(FexError::Config(format!("unknown serve flag `{other}`"))),
                }
            }
            if opts.queue_cap == 0 {
                return Err(FexError::Config("--queue must be at least 1".into()));
            }
            Ok(Action::Serve { opts })
        }
        "diag" => {
            let mut journal: Option<String> = None;
            let mut lab: Option<String> = None;
            let mut format = crate::diag::DiagFormat::Human;
            let mut config: Option<String> = None;
            let mut jobs = 0usize;
            let mut rules: Vec<String> = Vec::new();
            let mut deny: Vec<String> = Vec::new();
            let ids = |list: &str| -> Vec<String> {
                list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect()
            };
            while let Some(tok) = it.next() {
                match tok.as_str() {
                    "--lab" => {
                        lab = Some(match it.peek() {
                            Some(v) if !v.starts_with('-') => it.next().expect("peeked").clone(),
                            _ => String::from(".fex-lab"),
                        });
                    }
                    "--format" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--format needs a name".into()))?;
                        format = crate::diag::DiagFormat::parse(v)?;
                    }
                    "--config" => {
                        config = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| FexError::Config("--config needs a path".into()))?,
                        );
                    }
                    "--jobs" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--jobs needs a count".into()))?;
                        jobs = v
                            .parse()
                            .map_err(|_| FexError::Config(format!("bad job count `{v}`")))?;
                    }
                    "--rules" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--rules needs rule ids".into()))?;
                        rules.extend(ids(v));
                    }
                    "--deny" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--deny needs rule ids".into()))?;
                        deny.extend(ids(v));
                    }
                    other if !other.starts_with('-') => {
                        if journal.replace(other.to_string()).is_some() {
                            return Err(FexError::Config(format!(
                                "diag takes one journal path; unexpected `{other}`"
                            )));
                        }
                    }
                    other => return Err(FexError::Config(format!("unknown diag flag `{other}`"))),
                }
            }
            if journal.is_none() && lab.is_none() {
                return Err(FexError::Config(
                    "diag needs a journal path and/or --lab <dir>".into(),
                ));
            }
            Ok(Action::Diag { journal, lab, format, config, jobs, rules, deny })
        }
        "compare" => {
            let mut dir = String::from(".fex-lab");
            let mut metric = String::from("time");
            let mut svg: Option<String> = None;
            let mut positional: Vec<String> = Vec::new();
            while let Some(tok) = it.next() {
                match tok.as_str() {
                    "--lab" => {
                        dir = it
                            .next()
                            .cloned()
                            .ok_or_else(|| FexError::Config("--lab needs a directory".into()))?;
                    }
                    "--metric" => {
                        metric = it
                            .next()
                            .cloned()
                            .ok_or_else(|| FexError::Config("--metric needs a name".into()))?;
                    }
                    "--svg" => {
                        svg = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| FexError::Config("--svg needs a path".into()))?,
                        );
                    }
                    other if !other.starts_with('-') => positional.push(other.to_string()),
                    other => {
                        return Err(FexError::Config(format!("unknown compare flag `{other}`")))
                    }
                }
            }
            if positional.len() != 2 {
                return Err(FexError::Config("compare needs <baseline> <candidate>".into()));
            }
            let candidate = positional.pop().expect("length checked");
            let baseline = positional.pop().expect("length checked");
            Ok(Action::Compare { baseline, candidate, dir, metric, svg })
        }
        "install" => {
            let names = take_values(&mut it, "-n")?;
            if names.is_empty() {
                return Err(FexError::Config("install needs -n <script>".into()));
            }
            Ok(Action::Install { names })
        }
        "plot" => {
            let mut name = None;
            let mut kind = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "-n" => name = it.next().cloned(),
                    "-t" => kind = it.next().cloned(),
                    other => return Err(FexError::Config(format!("unknown plot flag `{other}`"))),
                }
            }
            let name = name.ok_or_else(|| FexError::Config("plot needs -n <name>".into()))?;
            let kind = kind.ok_or_else(|| FexError::Config("plot needs -t <kind>".into()))?;
            let request = PlotRequest::parse(&kind)
                .ok_or_else(|| FexError::Config(format!("unknown plot kind `{kind}`")))?;
            Ok(Action::Plot { name, request })
        }
        "run" => {
            let mut name: Option<String> = None;
            let mut config_types: Vec<String> = Vec::new();
            let mut threads: Vec<usize> = Vec::new();
            let mut reps: Option<usize> = None;
            let mut adaptive_pct: Option<f64> = None;
            let mut max_reps: Option<usize> = None;
            let mut cfg = ExperimentConfig::new("");
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "-n" => name = it.next().cloned(),
                    "-t" => config_types = collect_bare(&mut it),
                    "-m" => {
                        threads = collect_bare(&mut it)
                            .iter()
                            .map(|s| {
                                s.parse::<usize>().map_err(|_| {
                                    FexError::Config(format!("bad thread count `{s}`"))
                                })
                            })
                            .collect::<Result<_>>()?;
                    }
                    "-b" => {
                        cfg.benchmark = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| FexError::Config("-b needs a benchmark".into()))?,
                        )
                    }
                    "-r" => {
                        let v =
                            it.next().ok_or_else(|| FexError::Config("-r needs a count".into()))?;
                        reps = Some(
                            v.parse()
                                .map_err(|_| FexError::Config(format!("bad repetitions `{v}`")))?,
                        );
                    }
                    "--adaptive" => {
                        let v = it.next().ok_or_else(|| {
                            FexError::Config("--adaptive needs a precision percentage".into())
                        })?;
                        adaptive_pct = Some(
                            v.parse::<f64>()
                                .map_err(|_| FexError::Config(format!("bad precision `{v}`")))?,
                        );
                    }
                    "--max-reps" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--max-reps needs a count".into()))?;
                        max_reps = Some(
                            v.parse()
                                .map_err(|_| FexError::Config(format!("bad rep budget `{v}`")))?,
                        );
                    }
                    "--lab" => {
                        cfg.lab = Some(match it.peek() {
                            Some(v) if !v.starts_with('-') => it.next().expect("peeked").clone(),
                            _ => String::from(".fex-lab"),
                        });
                    }
                    "-i" => {
                        let v =
                            it.next().ok_or_else(|| FexError::Config("-i needs a size".into()))?;
                        cfg.input = match v.as_str() {
                            "test" => InputSize::Test,
                            "small" => InputSize::Small,
                            "native" => InputSize::Native,
                            other => {
                                return Err(FexError::Config(format!(
                                    "unknown input size `{other}`"
                                )))
                            }
                        };
                    }
                    "--tool" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--tool needs a name".into()))?;
                        cfg.tool = match v.as_str() {
                            "perf-stat" => MeasureTool::PerfStat,
                            "perf-stat-mem" => MeasureTool::PerfStatMemory,
                            "time" => MeasureTool::Time,
                            other => {
                                return Err(FexError::Config(format!("unknown tool `{other}`")))
                            }
                        };
                    }
                    "-v" => cfg.verbose = true,
                    "-d" => cfg.debug = true,
                    "--no-build" => cfg.no_build = true,
                    "--jobs" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--jobs needs a count".into()))?;
                        cfg.jobs = v
                            .parse()
                            .map_err(|_| FexError::Config(format!("bad job count `{v}`")))?;
                    }
                    "--chunk" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--chunk needs a size".into()))?;
                        cfg.chunk = v
                            .parse()
                            .map_err(|_| FexError::Config(format!("bad chunk size `{v}`")))?;
                    }
                    "--passes" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--passes needs a list".into()))?;
                        let names: Vec<&str> =
                            v.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
                        cfg.passes = PassMask::from_names(names)
                            .map_err(|e| FexError::Config(e.to_string()))?;
                    }
                    "--no-pass" => {
                        let v = it
                            .next()
                            .ok_or_else(|| FexError::Config("--no-pass needs a name".into()))?;
                        cfg.passes =
                            cfg.passes.without(v).map_err(|e| FexError::Config(e.to_string()))?;
                    }
                    "--no-fusion" => cfg.passes = PassMask::none(),
                    "--no-mru" => cfg.mru_fast_path = false,
                    "--no-decode-cache" => cfg.decode_cache = false,
                    "--no-journal" => cfg.journal = false,
                    "--no-graph" => cfg.graph = false,
                    other => return Err(FexError::Config(format!("unknown run flag `{other}`"))),
                }
            }
            cfg.name = name.ok_or_else(|| FexError::Config("run needs -n <experiment>".into()))?;
            if !config_types.is_empty() {
                cfg.build_types = config_types;
            }
            if !threads.is_empty() {
                cfg.threads = threads;
            }
            cfg.repetitions = match adaptive_pct {
                Some(pct) => Repetitions::Adaptive {
                    // `-r` is the floor under --adaptive; variance needs
                    // at least 2 samples.
                    min: reps.unwrap_or(2).max(2),
                    max: max_reps.unwrap_or(16),
                    rel_precision: pct / 100.0,
                },
                None if max_reps.is_some() => {
                    return Err(FexError::Config("--max-reps needs --adaptive".into()));
                }
                None => Repetitions::Fixed(reps.unwrap_or(1)),
            };
            cfg.validate()?;
            Ok(Action::Run(Box::new(cfg)))
        }
        other => Err(FexError::Config(format!("unknown action `{other}`"))),
    }
}

/// Collects the values following a flag until the next `-`-prefixed token.
fn collect_bare(it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>) -> Vec<String> {
    let mut out = Vec::new();
    while let Some(next) = it.peek() {
        if next.starts_with('-') {
            break;
        }
        out.push(it.next().expect("peeked").clone());
    }
    out
}

fn take_values(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    flag: &str,
) -> Result<Vec<String>> {
    let mut out = Vec::new();
    while let Some(next) = it.next() {
        if next == flag {
            out.extend(collect_bare(it));
        } else {
            return Err(FexError::Config(format!("unexpected `{next}`")));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_the_papers_example_invocations() {
        // ">> fex.py run -n phoenix -t gcc_native"
        let Action::Run(cfg) = parse(&argv("run -n phoenix -t gcc_native")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.name, "phoenix");
        assert_eq!(cfg.build_types, vec!["gcc_native"]);

        // ">> fex.py run -n splash -t gcc_native clang_native"
        let Action::Run(cfg) = parse(&argv("run -n splash -t gcc_native clang_native")).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(cfg.build_types.len(), 2);

        // ">> fex.py install -n gcc-6.1"
        assert_eq!(
            parse(&argv("install -n gcc-6.1")).unwrap(),
            Action::Install { names: vec!["gcc-6.1".into()] }
        );

        // ">> fex.py plot -n phoenix -t perf"
        assert_eq!(
            parse(&argv("plot -n phoenix -t perf")).unwrap(),
            Action::Plot { name: "phoenix".into(), request: PlotRequest::Perf }
        );
    }

    #[test]
    fn parses_all_run_flags() {
        let Action::Run(cfg) = parse(&argv(
            "run -n phoenix -t gcc_native gcc_asan -b histogram -m 1 2 4 -r 10 -i test -v -d --no-build --tool time --jobs 4 --no-fusion --no-mru --no-decode-cache",
        ))
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.benchmark.as_deref(), Some("histogram"));
        assert_eq!(cfg.threads, vec![1, 2, 4]);
        assert_eq!(cfg.repetitions, Repetitions::Fixed(10));
        assert!(cfg.verbose && cfg.debug && cfg.no_build);
        assert_eq!(cfg.tool, MeasureTool::Time);
        assert_eq!(cfg.jobs, 4);
        assert_eq!(cfg.passes, PassMask::none());
        assert!(!cfg.mru_fast_path && !cfg.decode_cache);
        assert_eq!(cfg.lab, None, "runs stay ephemeral unless --lab is given");
    }

    #[test]
    fn pass_pipeline_flags_select_subsets() {
        let Action::Run(cfg) = parse(&argv("run -n micro --passes trace,immfold")).unwrap() else {
            panic!("expected run");
        };
        assert!(cfg.passes.enables("trace") && cfg.passes.enables("immfold"));
        assert!(!cfg.passes.enables("fuse"));
        let Action::Run(cfg) = parse(&argv("run -n micro --no-pass fuse")).unwrap() else {
            panic!("expected run");
        };
        assert!(!cfg.passes.enables("fuse"));
        assert!(cfg.passes.enables("trace") && cfg.passes.enables("immfold"));
        let Action::Run(cfg) = parse(&argv("run -n micro --passes none")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.passes, PassMask::none());
        let Action::Run(cfg) = parse(&argv("run -n micro --chunk 8")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.chunk, 8);
    }

    #[test]
    fn pass_pipeline_flags_reject_malformed_selections() {
        let err = parse(&argv("run -n micro --passes bogus")).unwrap_err();
        assert!(err.to_string().contains("unknown pass `bogus`"), "{err}");
        let err = parse(&argv("run -n micro --passes fuse,fuse")).unwrap_err();
        assert!(err.to_string().contains("duplicate pass"), "{err}");
        let err = parse(&argv("run -n micro --passes immfold,trace")).unwrap_err();
        assert!(err.to_string().contains("out of pipeline order"), "{err}");
        assert!(parse(&argv("run -n micro --no-pass bogus")).is_err());
        assert!(parse(&argv("run -n micro --passes")).is_err());
        assert!(parse(&argv("run -n micro --chunk many")).is_err());
        assert!(parse(&argv("run -n micro --chunk")).is_err());
    }

    #[test]
    fn parses_adaptive_repetition_flags() {
        let Action::Run(cfg) = parse(&argv("run -n micro --adaptive 5")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.repetitions, Repetitions::Adaptive { min: 2, max: 16, rel_precision: 0.05 });
        let Action::Run(cfg) =
            parse(&argv("run -n micro -r 3 --adaptive 2.5 --max-reps 8")).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(cfg.repetitions, Repetitions::Adaptive { min: 3, max: 8, rel_precision: 0.025 });
        // --max-reps is meaningless without --adaptive; garbage rejected.
        assert!(parse(&argv("run -n micro --max-reps 8")).is_err());
        assert!(parse(&argv("run -n micro --adaptive never")).is_err());
        assert!(parse(&argv("run -n micro --adaptive 0")).is_err(), "validation rejects pct 0");
    }

    #[test]
    fn lab_flag_takes_an_optional_directory() {
        let Action::Run(cfg) = parse(&argv("run -n micro --lab")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.lab.as_deref(), Some(".fex-lab"));
        let Action::Run(cfg) = parse(&argv("run -n micro --lab /tmp/store -v")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.lab.as_deref(), Some("/tmp/store"));
        assert!(cfg.verbose, "flags after --lab still parse");
    }

    #[test]
    fn parses_lab_subcommands() {
        assert_eq!(
            parse(&argv("lab list")).unwrap(),
            Action::Lab { cmd: LabCommand::List { json: false }, dir: ".fex-lab".into() }
        );
        assert_eq!(
            parse(&argv("lab list --json --lab /tmp/store")).unwrap(),
            Action::Lab { cmd: LabCommand::List { json: true }, dir: "/tmp/store".into() }
        );
        assert_eq!(
            parse(&argv("lab show latest --lab /tmp/store")).unwrap(),
            Action::Lab {
                cmd: LabCommand::Show { selector: "latest".into() },
                dir: "/tmp/store".into()
            }
        );
        assert_eq!(
            parse(&argv("lab gc --keep 3")).unwrap(),
            Action::Lab { cmd: LabCommand::Gc { keep: 3 }, dir: ".fex-lab".into() }
        );
        assert!(parse(&argv("lab")).is_err());
        assert!(parse(&argv("lab show")).is_err(), "show needs a selector");
        assert!(parse(&argv("lab frobnicate")).is_err());
        assert!(parse(&argv("lab list extra")).is_err());
    }

    #[test]
    fn parses_lab_fsck() {
        assert_eq!(
            parse(&argv("lab fsck")).unwrap(),
            Action::Lab { cmd: LabCommand::Fsck { quarantine: false }, dir: ".fex-lab".into() }
        );
        assert_eq!(
            parse(&argv("lab fsck --quarantine --lab /tmp/store")).unwrap(),
            Action::Lab { cmd: LabCommand::Fsck { quarantine: true }, dir: "/tmp/store".into() }
        );
        assert!(parse(&argv("lab fsck extra")).is_err());
    }

    #[test]
    fn parses_diag() {
        let Action::Diag { journal, lab, format, config, jobs, rules, deny } =
            parse(&argv("diag target/fex-results/micro.journal.jsonl")).unwrap()
        else {
            panic!("expected diag");
        };
        assert_eq!(journal.as_deref(), Some("target/fex-results/micro.journal.jsonl"));
        assert_eq!(lab, None);
        assert_eq!(format, crate::diag::DiagFormat::Human);
        assert_eq!(config, None);
        assert_eq!(jobs, 0);
        assert!(rules.is_empty() && deny.is_empty());
    }

    #[test]
    fn parses_diag_flags() {
        let Action::Diag { journal, lab, format, config, jobs, rules, deny } = parse(&argv(
            "diag j.jsonl --lab /tmp/store --format sarif --config fex.toml --jobs 3 \
             --rules flakiness,variance-anomaly --deny variance-anomaly",
        ))
        .unwrap() else {
            panic!("expected diag");
        };
        assert_eq!(journal.as_deref(), Some("j.jsonl"));
        assert_eq!(lab.as_deref(), Some("/tmp/store"));
        assert_eq!(format, crate::diag::DiagFormat::Sarif);
        assert_eq!(config.as_deref(), Some("fex.toml"));
        assert_eq!(jobs, 3);
        assert_eq!(rules, vec!["flakiness".to_string(), "variance-anomaly".to_string()]);
        assert_eq!(deny, vec!["variance-anomaly".to_string()]);
    }

    #[test]
    fn diag_lab_takes_an_optional_value() {
        let Action::Diag { journal, lab, .. } = parse(&argv("diag --lab --format github")).unwrap()
        else {
            panic!("expected diag");
        };
        assert_eq!(journal, None);
        assert_eq!(lab.as_deref(), Some(".fex-lab"), "bare --lab defaults");
    }

    #[test]
    fn diag_rejects_bad_invocations() {
        assert!(parse(&argv("diag")).is_err(), "needs a journal or --lab");
        assert!(parse(&argv("diag a.jsonl b.jsonl")).is_err(), "one journal only");
        assert!(parse(&argv("diag j.jsonl --format xml")).is_err());
        assert!(parse(&argv("diag j.jsonl --frobnicate")).is_err());
    }

    #[test]
    fn parses_graph_stats() {
        assert_eq!(parse(&argv("graph stats")).unwrap(), Action::Graph { dir: ".fex-lab".into() });
        assert_eq!(
            parse(&argv("graph stats --lab /tmp/store")).unwrap(),
            Action::Graph { dir: "/tmp/store".into() }
        );
        assert!(parse(&argv("graph")).is_err());
        assert!(parse(&argv("graph prune")).is_err());
        assert!(parse(&argv("graph stats --frob")).is_err());
    }

    #[test]
    fn parses_no_graph() {
        let Action::Run(cfg) = parse(&argv("run -n micro")).unwrap() else {
            panic!("expected run");
        };
        assert!(cfg.graph, "the artifact graph is on by default");
        let Action::Run(cfg) = parse(&argv("run -n micro --no-graph")).unwrap() else {
            panic!("expected run");
        };
        assert!(!cfg.graph);
    }

    #[test]
    fn parses_fuzz() {
        let Action::Fuzz { opts, regressions } = parse(&argv("fuzz")).unwrap() else {
            panic!("expected fuzz");
        };
        assert_eq!((opts.seed, opts.cases), (42, 25), "CI smoke defaults");
        assert_eq!(regressions, None);

        let Action::Fuzz { opts, regressions } = parse(&argv(
            "fuzz --seed 7 --cases 3 --bundle /tmp/bundles --max-shrink 10 \
             --regressions tests/fuzz_regressions.txt",
        ))
        .unwrap() else {
            panic!("expected fuzz");
        };
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.cases, 3);
        assert_eq!(opts.bundle_dir, std::path::PathBuf::from("/tmp/bundles"));
        assert_eq!(opts.max_shrink, 10);
        assert_eq!(regressions.as_deref(), Some("tests/fuzz_regressions.txt"));

        assert!(parse(&argv("fuzz --seed")).is_err());
        assert!(parse(&argv("fuzz --cases soon")).is_err());
        assert!(parse(&argv("fuzz --sparkle")).is_err());
    }

    #[test]
    fn parses_compare() {
        assert_eq!(
            parse(&argv("compare prev latest")).unwrap(),
            Action::Compare {
                baseline: "prev".into(),
                candidate: "latest".into(),
                dir: ".fex-lab".into(),
                metric: "time".into(),
                svg: None,
            }
        );
        assert_eq!(
            parse(&argv("compare a.csv b.csv --lab /s --metric cycles --svg out.svg")).unwrap(),
            Action::Compare {
                baseline: "a.csv".into(),
                candidate: "b.csv".into(),
                dir: "/s".into(),
                metric: "cycles".into(),
                svg: Some("out.svg".into()),
            }
        );
        assert!(parse(&argv("compare onlyone")).is_err());
        assert!(parse(&argv("compare a b c")).is_err());
        assert!(parse(&argv("compare a b --sparkle")).is_err());
    }

    #[test]
    fn hot_path_optimisations_are_on_by_default() {
        let Action::Run(cfg) = parse(&argv("run -n micro")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.passes, PassMask::all());
        assert!(cfg.mru_fast_path && cfg.decode_cache);
    }

    #[test]
    fn jobs_flag_defaults_to_auto_and_rejects_garbage() {
        let Action::Run(cfg) = parse(&argv("run -n micro")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.jobs, 0, "auto by default");
        let Action::Run(cfg) = parse(&argv("run -n micro --jobs 0")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(cfg.jobs, 0, "explicit auto");
        assert!(parse(&argv("run -n micro --jobs")).is_err());
        assert!(parse(&argv("run -n micro --jobs many")).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run -t gcc_native")).is_err(), "missing -n");
        assert!(parse(&argv("run -n x -m zero")).is_err());
        assert!(parse(&argv("plot -n x -t sparkline")).is_err());
        assert!(parse(&argv("run -n x -i huge")).is_err());
        assert!(parse(&argv("install")).is_err());
    }

    #[test]
    fn list_and_report_are_bare() {
        assert_eq!(parse(&argv("list")).unwrap(), Action::List);
        assert_eq!(parse(&argv("report")).unwrap(), Action::Report { journal: None });
    }

    #[test]
    fn report_takes_an_optional_journal_path() {
        assert_eq!(
            parse(&argv("report target/fex-results/micro.journal.jsonl")).unwrap(),
            Action::Report { journal: Some("target/fex-results/micro.journal.jsonl".into()) }
        );
        assert!(parse(&argv("report a.jsonl b.jsonl")).is_err(), "at most one journal");
    }

    #[test]
    fn serve_defaults_and_flags_parse() {
        let Action::Serve { opts } = parse(&argv("serve")).unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(opts, crate::serve::ServeOptions::default());
        let Action::Serve { opts } =
            parse(&argv("serve --socket /tmp/s.sock --lab /tmp/lab --workers 4 --queue 9"))
                .unwrap()
        else {
            panic!("expected serve");
        };
        assert_eq!(opts.socket, std::path::PathBuf::from("/tmp/s.sock"));
        assert_eq!(opts.lab, "/tmp/lab");
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.queue_cap, 9);
    }

    #[test]
    fn serve_rejects_bad_flags_and_degenerate_queues() {
        assert!(parse(&argv("serve --port 80")).is_err());
        assert!(parse(&argv("serve --workers many")).is_err());
        assert!(parse(&argv("serve --queue 0")).is_err(), "a zero-capacity queue serves nobody");
        assert!(parse(&argv("serve --socket")).is_err(), "--socket needs a value");
    }

    #[test]
    fn journal_is_on_by_default_with_an_escape_hatch() {
        let Action::Run(cfg) = parse(&argv("run -n micro")).unwrap() else {
            panic!("expected run");
        };
        assert!(cfg.journal);
        let Action::Run(cfg) = parse(&argv("run -n micro --no-journal")).unwrap() else {
            panic!("expected run");
        };
        assert!(!cfg.journal);
    }
}
