//! Experiment configuration: the typed form of `fex.py`'s command line.

use fex_suites::InputSize;
use fex_vm::{FaultPlan, MachineConfig, MeasureTool, PassMask};

use crate::error::{FexError, Result};
use crate::resilience::RunPolicy;

/// Upper bound on the worker count picked by `--jobs 0` (auto): even on
/// very wide hosts the matrix rarely has more than this many independent
/// run units in flight, and memory per in-flight machine is not free.
pub const MAX_AUTO_JOBS: usize = 16;

/// Fault injection scoped to an experiment: a [`FaultPlan`] applied to
/// the machines of one benchmark (or all of them).
///
/// This is the harness's chaos knob — runs of matching benchmarks
/// execute on machines whose fault plan is armed, with the retry attempt
/// number fed in as the plan's salt so transient faults re-roll across
/// retries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultInjection {
    /// Restrict injection to this benchmark; `None` injects everywhere.
    pub benchmark: Option<String>,
    /// The plan armed on matching machines.
    pub plan: FaultPlan,
}

impl FaultInjection {
    /// Injects `plan` into every benchmark of the experiment.
    pub fn everywhere(plan: FaultPlan) -> Self {
        FaultInjection { benchmark: None, plan }
    }

    /// Injects `plan` only into runs of `benchmark`.
    pub fn for_benchmark(benchmark: impl Into<String>, plan: FaultPlan) -> Self {
        FaultInjection { benchmark: Some(benchmark.into()), plan }
    }

    /// Whether runs of `benchmark` are subject to this injection.
    pub fn applies_to(&self, benchmark: &str) -> bool {
        self.plan.enabled() && self.benchmark.as_deref().is_none_or(|b| b == benchmark)
    }
}

/// Repetition policy for each cell of the experiment matrix.
///
/// `Fixed(n)` is the classic `-r n`. `Adaptive` repeats a cell until the
/// 95% confidence interval of its successful samples is tight enough —
/// half-width ≤ `rel_precision` × |mean| — or the `max` budget is
/// exhausted, never stopping before `min` reps.
///
/// The controller is deterministic across `--jobs`: measurements are pure
/// functions of the unit coordinates (see
/// [`ExperimentConfig::unit_seed`]), so the decision to run rep `k+1` is
/// a pure function of the cell's first `k` samples, identical whether
/// those samples were produced sequentially or by the parallel scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Repetitions {
    /// Exactly `n` repetitions per cell.
    Fixed(usize),
    /// Repeat until converged or out of budget.
    Adaptive {
        /// Floor: always run at least this many reps (≥ 2 to estimate
        /// variance).
        min: usize,
        /// Budget: never run more than this many reps.
        max: usize,
        /// Convergence target: CI95 half-width ≤ this fraction of |mean|.
        rel_precision: f64,
    },
}

impl Default for Repetitions {
    fn default() -> Self {
        Repetitions::Fixed(1)
    }
}

impl Repetitions {
    /// Reps every cell runs regardless of convergence.
    pub fn min_reps(&self) -> usize {
        match *self {
            Repetitions::Fixed(n) => n,
            Repetitions::Adaptive { min, .. } => min,
        }
    }

    /// The hard per-cell rep budget.
    pub fn max_reps(&self) -> usize {
        match *self {
            Repetitions::Fixed(n) => n,
            Repetitions::Adaptive { max, .. } => max,
        }
    }

    /// Whether a cell that has executed `done` reps, yielding the
    /// successful measurements `samples`, should run another rep.
    ///
    /// `done` counts executed reps (including failed ones — failures
    /// consume budget); `samples` holds only the successful
    /// measurements, in rep order.
    pub fn wants_more(&self, done: usize, samples: &[f64]) -> bool {
        match *self {
            Repetitions::Fixed(n) => done < n,
            Repetitions::Adaptive { min, max, rel_precision } => {
                if done < min {
                    return true;
                }
                if done >= max {
                    return false;
                }
                !converged(samples, rel_precision)
            }
        }
    }
}

/// Whether the CI95 half-width of `samples` is within `rel_precision` of
/// the magnitude of the mean. Fewer than 2 samples never converge (no
/// variance estimate yet).
fn converged(samples: &[f64], rel_precision: f64) -> bool {
    if samples.len() < 2 {
        return false;
    }
    let m = crate::collect::stats::mean(samples);
    crate::collect::stats::ci95_half_width(samples) <= rel_precision * m.abs()
}

/// One experiment invocation (`fex run -n <name> -t <types> …`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Experiment name (`-n`): `phoenix`, `splash`, `nginx`, `ripe`, …
    pub name: String,
    /// Build types to compare (`-t`), e.g. `gcc_native clang_native`.
    pub build_types: Vec<String>,
    /// Restrict to a single benchmark (`-b`).
    pub benchmark: Option<String>,
    /// Thread counts to sweep (`-m`), default `[1]`.
    pub threads: Vec<usize>,
    /// Repetition policy per matrix cell (`-r` / `--adaptive`), default
    /// one fixed rep.
    pub repetitions: Repetitions,
    /// Input size (`-i`), default native.
    pub input: InputSize,
    /// Verbose output (`-v`).
    pub verbose: bool,
    /// Debug builds and debug environment (`-d`).
    pub debug: bool,
    /// Skip rebuilding when a cached binary exists (`--no-build`).
    pub no_build: bool,
    /// Measurement tool.
    pub tool: MeasureTool,
    /// Seed for deterministic machines and workloads.
    pub seed: u64,
    /// Optional fault injection (resilience testing).
    pub fault: Option<FaultInjection>,
    /// Retry/backoff/quarantine policy for failing runs.
    pub resilience: RunPolicy,
    /// Worker threads for the run-unit scheduler (`--jobs`); `0` means
    /// auto — available parallelism capped at [`MAX_AUTO_JOBS`].
    pub jobs: usize,
    /// Units each scheduler worker claims per grab (`--chunk`); `0`
    /// means auto — tuned from the matrix width and worker count.
    pub chunk: usize,
    /// The peephole pass subset run over the VM's decoded stream
    /// (`--passes`/`--no-pass` select it; `--no-fusion` clears it;
    /// measured results are identical for any subset).
    pub passes: PassMask,
    /// MRU line fast path in the cache simulator (`--no-mru` clears it;
    /// measured results are identical).
    pub mru_fast_path: bool,
    /// Share each artifact's decoded form across all its run units
    /// (`--no-decode-cache` clears it; measured results are identical).
    pub decode_cache: bool,
    /// Record the structured run journal (`--no-journal` clears it;
    /// results and failure CSVs are byte-identical either way).
    pub journal: bool,
    /// Serve clean run units from the artifact graph's node cache on warm
    /// re-runs (`--no-graph` clears it; only takes effect with `--lab`,
    /// and warm results are byte-identical to cold).
    pub graph: bool,
    /// Archive the completed run into a [`RunStore`](crate::lab::RunStore)
    /// at this directory (`--lab [dir]`); `None` keeps runs ephemeral.
    pub lab: Option<String>,
}

impl ExperimentConfig {
    /// A config with the framework defaults, mirroring `fex.py run -n`.
    pub fn new(name: impl Into<String>) -> Self {
        ExperimentConfig {
            name: name.into(),
            build_types: vec!["gcc_native".into()],
            benchmark: None,
            threads: vec![1],
            repetitions: Repetitions::Fixed(1),
            input: InputSize::Native,
            verbose: false,
            debug: false,
            no_build: false,
            tool: MeasureTool::PerfStat,
            seed: 42,
            fault: None,
            resilience: RunPolicy::default(),
            jobs: 0,
            chunk: 0,
            passes: PassMask::all(),
            mru_fast_path: true,
            decode_cache: true,
            journal: true,
            graph: true,
            lab: None,
        }
    }

    /// Sets the build types (`-t`).
    pub fn types<S: Into<String>>(mut self, types: Vec<S>) -> Self {
        self.build_types = types.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the thread counts (`-m`).
    pub fn threads(mut self, threads: Vec<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Sets a fixed repetition count (`-r`).
    pub fn repetitions(mut self, r: usize) -> Self {
        self.repetitions = Repetitions::Fixed(r);
        self
    }

    /// Sets the adaptive repetition policy (`--adaptive <pct>`): repeat
    /// each cell from `min` up to `max` reps until the CI95 half-width
    /// is within `rel_precision` of the mean.
    pub fn adaptive_repetitions(mut self, min: usize, max: usize, rel_precision: f64) -> Self {
        self.repetitions = Repetitions::Adaptive { min, max, rel_precision };
        self
    }

    /// Archives the completed run into the store at `dir` (`--lab`).
    pub fn lab(mut self, dir: impl Into<String>) -> Self {
        self.lab = Some(dir.into());
        self
    }

    /// Toggles artifact-graph reuse for warm re-runs (`--no-graph`).
    pub fn graph(mut self, on: bool) -> Self {
        self.graph = on;
        self
    }

    /// Sets the input size (`-i`).
    pub fn input(mut self, input: InputSize) -> Self {
        self.input = input;
        self
    }

    /// Restricts to one benchmark (`-b`).
    pub fn benchmark(mut self, b: impl Into<String>) -> Self {
        self.benchmark = Some(b.into());
        self
    }

    /// Selects the measurement tool.
    pub fn tool(mut self, tool: MeasureTool) -> Self {
        self.tool = tool;
        self
    }

    /// Sets the deterministic seed (`--seed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Arms fault injection for this experiment.
    pub fn fault(mut self, injection: FaultInjection) -> Self {
        self.fault = Some(injection);
        self
    }

    /// Sets the resilience policy.
    pub fn resilience(mut self, policy: RunPolicy) -> Self {
        self.resilience = policy;
        self
    }

    /// Sets the scheduler worker count (`--jobs`); `0` means auto.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enables or disables the whole peephole pipeline (`--no-fusion`).
    /// Alias for `passes(PassMask::all())` / `passes(PassMask::none())`.
    pub fn fusion(mut self, on: bool) -> Self {
        self.passes = if on { PassMask::all() } else { PassMask::none() };
        self
    }

    /// Selects the peephole pass subset (`--passes`/`--no-pass`).
    pub fn passes(mut self, passes: PassMask) -> Self {
        self.passes = passes;
        self
    }

    /// Sets the scheduler chunk size (`--chunk`); `0` means auto.
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Enables or disables the MRU cache fast path (`--no-mru`).
    pub fn mru(mut self, on: bool) -> Self {
        self.mru_fast_path = on;
        self
    }

    /// Enables or disables the decoded-artifact cache
    /// (`--no-decode-cache`).
    pub fn decode_cache(mut self, on: bool) -> Self {
        self.decode_cache = on;
        self
    }

    /// Enables or disables the structured run journal (`--no-journal`).
    pub fn journal(mut self, on: bool) -> Self {
        self.journal = on;
        self
    }

    /// The worker count the scheduler actually uses: the configured
    /// `--jobs` value, or (when 0/auto) the host's available parallelism
    /// capped at [`MAX_AUTO_JOBS`].
    pub fn effective_jobs(&self) -> usize {
        if self.jobs != 0 {
            self.jobs
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_AUTO_JOBS)
        }
    }

    /// The fault plan armed for `benchmark`, if any.
    pub fn fault_plan_for(&self, benchmark: &str) -> Option<&FaultPlan> {
        self.fault.as_ref().filter(|inj| inj.applies_to(benchmark)).map(|inj| &inj.plan)
    }

    /// The deterministic seed of one run unit, mixed from the experiment
    /// seed and the unit's full coordinates.
    ///
    /// Every run unit owns its randomness: machine seed and fault-plan
    /// seed are pure functions of `(config.seed, bench, type, threads,
    /// rep)`, never of shared mutable state, so results are identical
    /// whatever order workers pick units up in — and a `--jobs 8` run is
    /// byte-identical to `--jobs 1`.
    pub fn unit_seed(&self, bench: &str, ty: &str, threads: usize, rep: Option<usize>) -> u64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in bench.bytes() {
            h = mix(h ^ u64::from(b));
        }
        h = mix(h ^ 0x00ff_00ff_00ff_00ff);
        for b in ty.bytes() {
            h = mix(h ^ u64::from(b));
        }
        h = mix(h ^ threads as u64);
        h = mix(h ^ rep.map_or(0, |r| r as u64 + 1));
        h
    }

    /// The [`MachineConfig`] for one run unit: per-unit seed, thread
    /// count as core count, the armed fault plan (re-seeded per unit and
    /// salted with the retry `attempt`), and the resilience run budget.
    ///
    /// Both the sequential Fig 4 loop and the parallel scheduler build
    /// machines through this one function, which is what makes their
    /// outputs byte-identical by construction.
    pub fn unit_machine_config(
        &self,
        bench: &str,
        ty: &str,
        threads: usize,
        rep: Option<usize>,
        attempt: u64,
    ) -> MachineConfig {
        let seed = self.unit_seed(bench, ty, threads, rep);
        let mut mc = MachineConfig {
            cores: threads.max(1),
            seed,
            passes: self.passes,
            mru_fast_path: self.mru_fast_path,
            ..MachineConfig::default()
        };
        if let Some(plan) = self.fault_plan_for(bench) {
            let mut plan = plan.clone();
            plan.seed ^= seed;
            mc.fault_plan = plan.with_attempt(attempt);
        }
        if let Some(budget) = self.resilience.run_budget {
            mc.max_instructions = budget;
        }
        mc
    }

    /// Validates basic invariants.
    ///
    /// # Errors
    ///
    /// [`FexError::Config`] on empty type/thread lists or zero reps.
    pub fn validate(&self) -> Result<()> {
        if self.build_types.is_empty() {
            return Err(FexError::Config("at least one build type is required".into()));
        }
        if self.threads.is_empty() || self.threads.contains(&0) {
            return Err(FexError::Config("thread counts must be positive".into()));
        }
        match self.repetitions {
            Repetitions::Fixed(0) => {
                return Err(FexError::Config("repetitions must be at least 1".into()));
            }
            Repetitions::Fixed(_) => {}
            Repetitions::Adaptive { min, max, rel_precision } => {
                if min < 2 {
                    return Err(FexError::Config(
                        "adaptive repetitions need min ≥ 2 to estimate variance".into(),
                    ));
                }
                if max < min {
                    return Err(FexError::Config(
                        "adaptive repetition budget must be ≥ the minimum".into(),
                    ));
                }
                if rel_precision.is_nan() || rel_precision <= 0.0 {
                    return Err(FexError::Config(
                        "adaptive precision must be a positive fraction".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Stable name of the input size for CSV cells.
    pub fn input_name(&self) -> &'static str {
        input_name(self.input)
    }
}

/// One round of splitmix64-style bit mixing (good avalanche, no deps).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Stable name for an input size.
pub fn input_name(input: InputSize) -> &'static str {
    match input {
        InputSize::Test => "test",
        InputSize::Small => "small",
        InputSize::Native => "native",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_validation() {
        let c = ExperimentConfig::new("phoenix");
        assert!(c.validate().is_ok());
        assert_eq!(c.threads, vec![1]);
        assert_eq!(c.input_name(), "native");

        assert!(ExperimentConfig::new("x").types(Vec::<String>::new()).validate().is_err());
        assert!(ExperimentConfig::new("x").threads(vec![0]).validate().is_err());
        assert!(ExperimentConfig::new("x").repetitions(0).validate().is_err());
        assert!(ExperimentConfig::new("x").adaptive_repetitions(1, 8, 0.05).validate().is_err());
        assert!(ExperimentConfig::new("x").adaptive_repetitions(4, 2, 0.05).validate().is_err());
        assert!(ExperimentConfig::new("x").adaptive_repetitions(2, 8, 0.0).validate().is_err());
        assert!(ExperimentConfig::new("x").adaptive_repetitions(2, 8, 0.05).validate().is_ok());
    }

    #[test]
    fn repetition_policies_decide_when_to_stop() {
        let fixed = Repetitions::Fixed(3);
        assert!(fixed.wants_more(0, &[]) && fixed.wants_more(2, &[1.0, 2.0]));
        assert!(!fixed.wants_more(3, &[1.0, 2.0, 3.0]));
        assert_eq!((fixed.min_reps(), fixed.max_reps()), (3, 3));

        let adaptive = Repetitions::Adaptive { min: 2, max: 5, rel_precision: 0.05 };
        assert_eq!((adaptive.min_reps(), adaptive.max_reps()), (2, 5));
        // Below the floor it always continues, even on identical samples.
        assert!(adaptive.wants_more(1, &[10.0]));
        // Tight samples converge at the floor…
        assert!(!adaptive.wants_more(2, &[10.0, 10.0]));
        // …noisy samples keep going…
        assert!(adaptive.wants_more(2, &[10.0, 20.0]));
        // …until the budget runs out.
        assert!(!adaptive.wants_more(5, &[10.0, 20.0, 10.0, 20.0, 10.0]));
        // Failed reps consume budget: `done` may exceed the sample count.
        assert!(adaptive.wants_more(3, &[10.0]));
        assert!(!adaptive.wants_more(5, &[10.0]));
    }

    #[test]
    fn builder_sets_fields() {
        let c = ExperimentConfig::new("splash")
            .types(vec!["gcc_native", "clang_native"])
            .threads(vec![1, 2, 4])
            .repetitions(3)
            .input(InputSize::Test)
            .benchmark("fft");
        assert_eq!(c.build_types.len(), 2);
        assert_eq!(c.threads, vec![1, 2, 4]);
        assert_eq!(c.benchmark.as_deref(), Some("fft"));
        assert_eq!(c.input_name(), "test");
    }

    #[test]
    fn fault_injection_scoping() {
        use fex_vm::FaultKind;

        let everywhere = FaultInjection::everywhere(FaultPlan::persistent(FaultKind::Trap));
        assert!(everywhere.applies_to("fft") && everywhere.applies_to("lu"));

        let scoped = FaultInjection::for_benchmark("fft", FaultPlan::persistent(FaultKind::Trap));
        assert!(scoped.applies_to("fft"));
        assert!(!scoped.applies_to("lu"));

        // A disabled plan never applies, regardless of scope.
        let disabled = FaultInjection::everywhere(FaultPlan::none());
        assert!(!disabled.applies_to("fft"));

        let c = ExperimentConfig::new("splash").fault(scoped);
        assert!(c.fault_plan_for("fft").is_some());
        assert!(c.fault_plan_for("lu").is_none());
        assert!(ExperimentConfig::new("splash").fault_plan_for("fft").is_none());
    }

    #[test]
    fn unit_seeds_are_deterministic_and_coordinate_sensitive() {
        let c = ExperimentConfig::new("splash");
        let s = c.unit_seed("fft", "gcc_native", 4, Some(0));
        assert_eq!(s, c.unit_seed("fft", "gcc_native", 4, Some(0)), "pure function");
        // Every coordinate matters.
        assert_ne!(s, c.unit_seed("lu", "gcc_native", 4, Some(0)));
        assert_ne!(s, c.unit_seed("fft", "clang_native", 4, Some(0)));
        assert_ne!(s, c.unit_seed("fft", "gcc_native", 2, Some(0)));
        assert_ne!(s, c.unit_seed("fft", "gcc_native", 4, Some(1)));
        assert_ne!(s, c.unit_seed("fft", "gcc_native", 4, None));
        // And the experiment seed feeds in.
        let c2 = ExperimentConfig::new("splash");
        let c2 = ExperimentConfig { seed: 43, ..c2 };
        assert_ne!(s, c2.unit_seed("fft", "gcc_native", 4, Some(0)));
    }

    #[test]
    fn unit_machine_config_arms_fault_plan_and_budget() {
        use fex_vm::FaultKind;

        let c = ExperimentConfig::new("splash")
            .fault(FaultInjection::for_benchmark("fft", FaultPlan::persistent(FaultKind::Trap)))
            .resilience(RunPolicy::default().budget(50_000));
        let mc = c.unit_machine_config("fft", "gcc_native", 4, Some(1), 2);
        assert_eq!(mc.cores, 4);
        assert_eq!(mc.seed, c.unit_seed("fft", "gcc_native", 4, Some(1)));
        assert!(mc.fault_plan.enabled());
        assert_eq!(mc.fault_plan.attempt, 2);
        assert_eq!(mc.max_instructions, 50_000);
        // Unmatched benchmark: no fault plan, but the budget still holds.
        let clean = c.unit_machine_config("lu", "gcc_native", 1, None, 0);
        assert!(!clean.fault_plan.enabled());
        assert_eq!(clean.max_instructions, 50_000);
    }

    #[test]
    fn effective_jobs_resolves_auto_and_explicit() {
        let c = ExperimentConfig::new("phoenix");
        assert_eq!(c.jobs, 0, "default is auto");
        let auto = c.effective_jobs();
        assert!((1..=MAX_AUTO_JOBS).contains(&auto));
        assert_eq!(c.clone().jobs(8).effective_jobs(), 8);
        assert_eq!(c.jobs(1).effective_jobs(), 1);
    }

    #[test]
    fn default_resilience_policy_retries_twice() {
        let c = ExperimentConfig::new("phoenix");
        assert_eq!(c.resilience.max_retries, 2);
        assert_eq!(c.resilience.failure_threshold, 1);
        assert!(c.resilience.run_budget.is_none());
    }
}
