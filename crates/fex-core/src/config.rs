//! Experiment configuration: the typed form of `fex.py`'s command line.

use fex_suites::InputSize;
use fex_vm::{FaultPlan, MeasureTool};

use crate::error::{FexError, Result};
use crate::resilience::RunPolicy;

/// Fault injection scoped to an experiment: a [`FaultPlan`] applied to
/// the machines of one benchmark (or all of them).
///
/// This is the harness's chaos knob — runs of matching benchmarks
/// execute on machines whose fault plan is armed, with the retry attempt
/// number fed in as the plan's salt so transient faults re-roll across
/// retries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultInjection {
    /// Restrict injection to this benchmark; `None` injects everywhere.
    pub benchmark: Option<String>,
    /// The plan armed on matching machines.
    pub plan: FaultPlan,
}

impl FaultInjection {
    /// Injects `plan` into every benchmark of the experiment.
    pub fn everywhere(plan: FaultPlan) -> Self {
        FaultInjection { benchmark: None, plan }
    }

    /// Injects `plan` only into runs of `benchmark`.
    pub fn for_benchmark(benchmark: impl Into<String>, plan: FaultPlan) -> Self {
        FaultInjection { benchmark: Some(benchmark.into()), plan }
    }

    /// Whether runs of `benchmark` are subject to this injection.
    pub fn applies_to(&self, benchmark: &str) -> bool {
        self.plan.enabled() && self.benchmark.as_deref().is_none_or(|b| b == benchmark)
    }
}

/// One experiment invocation (`fex run -n <name> -t <types> …`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Experiment name (`-n`): `phoenix`, `splash`, `nginx`, `ripe`, …
    pub name: String,
    /// Build types to compare (`-t`), e.g. `gcc_native clang_native`.
    pub build_types: Vec<String>,
    /// Restrict to a single benchmark (`-b`).
    pub benchmark: Option<String>,
    /// Thread counts to sweep (`-m`), default `[1]`.
    pub threads: Vec<usize>,
    /// Repetitions per point (`-r`), default 1.
    pub repetitions: usize,
    /// Input size (`-i`), default native.
    pub input: InputSize,
    /// Verbose output (`-v`).
    pub verbose: bool,
    /// Debug builds and debug environment (`-d`).
    pub debug: bool,
    /// Skip rebuilding when a cached binary exists (`--no-build`).
    pub no_build: bool,
    /// Measurement tool.
    pub tool: MeasureTool,
    /// Seed for deterministic machines and workloads.
    pub seed: u64,
    /// Optional fault injection (resilience testing).
    pub fault: Option<FaultInjection>,
    /// Retry/backoff/quarantine policy for failing runs.
    pub resilience: RunPolicy,
}

impl ExperimentConfig {
    /// A config with the framework defaults, mirroring `fex.py run -n`.
    pub fn new(name: impl Into<String>) -> Self {
        ExperimentConfig {
            name: name.into(),
            build_types: vec!["gcc_native".into()],
            benchmark: None,
            threads: vec![1],
            repetitions: 1,
            input: InputSize::Native,
            verbose: false,
            debug: false,
            no_build: false,
            tool: MeasureTool::PerfStat,
            seed: 42,
            fault: None,
            resilience: RunPolicy::default(),
        }
    }

    /// Sets the build types (`-t`).
    pub fn types<S: Into<String>>(mut self, types: Vec<S>) -> Self {
        self.build_types = types.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the thread counts (`-m`).
    pub fn threads(mut self, threads: Vec<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Sets repetitions (`-r`).
    pub fn repetitions(mut self, r: usize) -> Self {
        self.repetitions = r;
        self
    }

    /// Sets the input size (`-i`).
    pub fn input(mut self, input: InputSize) -> Self {
        self.input = input;
        self
    }

    /// Restricts to one benchmark (`-b`).
    pub fn benchmark(mut self, b: impl Into<String>) -> Self {
        self.benchmark = Some(b.into());
        self
    }

    /// Selects the measurement tool.
    pub fn tool(mut self, tool: MeasureTool) -> Self {
        self.tool = tool;
        self
    }

    /// Arms fault injection for this experiment.
    pub fn fault(mut self, injection: FaultInjection) -> Self {
        self.fault = Some(injection);
        self
    }

    /// Sets the resilience policy.
    pub fn resilience(mut self, policy: RunPolicy) -> Self {
        self.resilience = policy;
        self
    }

    /// The fault plan armed for `benchmark`, if any.
    pub fn fault_plan_for(&self, benchmark: &str) -> Option<&FaultPlan> {
        self.fault.as_ref().filter(|inj| inj.applies_to(benchmark)).map(|inj| &inj.plan)
    }

    /// Validates basic invariants.
    ///
    /// # Errors
    ///
    /// [`FexError::Config`] on empty type/thread lists or zero reps.
    pub fn validate(&self) -> Result<()> {
        if self.build_types.is_empty() {
            return Err(FexError::Config("at least one build type is required".into()));
        }
        if self.threads.is_empty() || self.threads.contains(&0) {
            return Err(FexError::Config("thread counts must be positive".into()));
        }
        if self.repetitions == 0 {
            return Err(FexError::Config("repetitions must be at least 1".into()));
        }
        Ok(())
    }

    /// Stable name of the input size for CSV cells.
    pub fn input_name(&self) -> &'static str {
        input_name(self.input)
    }
}

/// Stable name for an input size.
pub fn input_name(input: InputSize) -> &'static str {
    match input {
        InputSize::Test => "test",
        InputSize::Small => "small",
        InputSize::Native => "native",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_validation() {
        let c = ExperimentConfig::new("phoenix");
        assert!(c.validate().is_ok());
        assert_eq!(c.threads, vec![1]);
        assert_eq!(c.input_name(), "native");

        assert!(ExperimentConfig::new("x").types(Vec::<String>::new()).validate().is_err());
        assert!(ExperimentConfig::new("x").threads(vec![0]).validate().is_err());
        assert!(ExperimentConfig::new("x").repetitions(0).validate().is_err());
    }

    #[test]
    fn builder_sets_fields() {
        let c = ExperimentConfig::new("splash")
            .types(vec!["gcc_native", "clang_native"])
            .threads(vec![1, 2, 4])
            .repetitions(3)
            .input(InputSize::Test)
            .benchmark("fft");
        assert_eq!(c.build_types.len(), 2);
        assert_eq!(c.threads, vec![1, 2, 4]);
        assert_eq!(c.benchmark.as_deref(), Some("fft"));
        assert_eq!(c.input_name(), "test");
    }

    #[test]
    fn fault_injection_scoping() {
        use fex_vm::FaultKind;

        let everywhere = FaultInjection::everywhere(FaultPlan::persistent(FaultKind::Trap));
        assert!(everywhere.applies_to("fft") && everywhere.applies_to("lu"));

        let scoped = FaultInjection::for_benchmark("fft", FaultPlan::persistent(FaultKind::Trap));
        assert!(scoped.applies_to("fft"));
        assert!(!scoped.applies_to("lu"));

        // A disabled plan never applies, regardless of scope.
        let disabled = FaultInjection::everywhere(FaultPlan::none());
        assert!(!disabled.applies_to("fft"));

        let c = ExperimentConfig::new("splash").fault(scoped);
        assert!(c.fault_plan_for("fft").is_some());
        assert!(c.fault_plan_for("lu").is_none());
        assert!(ExperimentConfig::new("splash").fault_plan_for("fft").is_none());
    }

    #[test]
    fn default_resilience_policy_retries_twice() {
        let c = ExperimentConfig::new("phoenix");
        assert_eq!(c.resilience.max_retries, 2);
        assert_eq!(c.resilience.failure_threshold, 1);
        assert!(c.resilience.run_budget.is_none());
    }
}
