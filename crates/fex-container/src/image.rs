//! Images and the image builder (the `Dockerfile` equivalent).

use crate::digest::{Digest, DigestBuilder};
use crate::fs::{FileSystem, Layer};
use crate::registry::MIB;

/// An immutable image: named layer stack with a digest.
#[derive(Debug, Clone)]
pub struct Image {
    name: String,
    fs: FileSystem,
    history: Vec<String>,
}

impl Image {
    /// The image name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer stack.
    pub fn filesystem(&self) -> &FileSystem {
        &self.fs
    }

    /// Build steps that produced this image.
    pub fn history(&self) -> &[String] {
        &self.history
    }

    /// Content digest: layers plus history.
    pub fn digest(&self) -> Digest {
        let mut b = DigestBuilder::new();
        b.update(&self.fs.digest().0.to_le_bytes());
        for h in &self.history {
            b.update_str(h);
        }
        b.finish()
    }

    /// Shipped size in bytes (sum of layers).
    pub fn size(&self) -> u64 {
        self.fs.stored_size()
    }

    /// Per-layer `(step, bytes)` breakdown.
    pub fn size_breakdown(&self) -> Vec<(String, u64)> {
        self.history.iter().cloned().zip(self.fs.layers().iter().map(|l| l.size())).collect()
    }

    /// The image Fex ships: Ubuntu base (~122 MB), benchmark sources
    /// (~300 MB) and helper packages (git, python3, wget, …), totalling
    /// ~1.04 GB — the paper's §II-A footnote.
    pub fn fex_shipping_image() -> Image {
        ImageBuilder::from_scratch("fex")
            .add_blob_layer("FROM ubuntu:16.04", "/", 122 * MIB)
            .add_blob_layer("COPY src/ (benchmark sources)", "/fex/src", 300 * MIB)
            .add_blob_layer(
                "RUN apt-get install git python3 wget pandas matplotlib",
                "/usr",
                640 * MIB,
            )
            .add_file_layer(
                "COPY fex.py environment.py config.py install/ makefiles/ experiments/",
                &[
                    ("/fex/fex.py", b"#!framework entry point".as_slice()),
                    ("/fex/environment.py", b"# environment defaults"),
                    ("/fex/config.py", b"# collection/plot parameters"),
                    ("/fex/install/common.sh", b"# download() helpers"),
                    ("/fex/makefiles/common.mk", b"# common build layer"),
                    ("/fex/experiments/run.py", b"# abstract runner"),
                ],
            )
            .build()
    }
}

/// Step-by-step image construction.
#[derive(Debug, Clone)]
pub struct ImageBuilder {
    name: String,
    fs: FileSystem,
    history: Vec<String>,
}

impl ImageBuilder {
    /// Starts an empty image.
    pub fn from_scratch(name: impl Into<String>) -> Self {
        ImageBuilder { name: name.into(), fs: FileSystem::new(), history: Vec::new() }
    }

    /// Starts from an existing image (like `FROM base`).
    pub fn from_image(name: impl Into<String>, base: &Image) -> Self {
        ImageBuilder { name: name.into(), fs: base.fs.clone(), history: base.history.clone() }
    }

    /// Adds a layer holding one opaque blob of `size` bytes at `path` —
    /// used for bulk content whose exact bytes don't matter (base OS,
    /// package trees), keeping host memory use reasonable while size
    /// accounting and digests stay exact.
    pub fn add_blob_layer(mut self, step: &str, path: &str, size: u64) -> Self {
        let mut layer = Layer::new();
        layer.write_blob(path, size);
        self.history.push(step.to_string());
        self.fs.push_layer(layer);
        self
    }

    /// Adds a layer of concrete files.
    pub fn add_file_layer(mut self, step: &str, files: &[(&str, &[u8])]) -> Self {
        let mut layer = Layer::new();
        for (path, data) in files {
            layer.write(*path, data.to_vec());
        }
        self.history.push(step.to_string());
        self.fs.push_layer(layer);
        self
    }

    /// Finalises the image.
    pub fn build(self) -> Image {
        Image { name: self.name, fs: self.fs, history: self.history }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_layers_and_history() {
        let img = ImageBuilder::from_scratch("t")
            .add_file_layer("COPY a", &[("/a", b"1")])
            .add_file_layer("COPY b", &[("/b", b"22")])
            .build();
        assert_eq!(img.history().len(), 2);
        assert_eq!(img.filesystem().layers().len(), 2);
        assert_eq!(img.size(), 3);
    }

    #[test]
    fn identical_recipes_have_identical_digests() {
        let build =
            || ImageBuilder::from_scratch("t").add_file_layer("COPY a", &[("/a", b"1")]).build();
        assert_eq!(build().digest(), build().digest());
        let other =
            ImageBuilder::from_scratch("t").add_file_layer("COPY a", &[("/a", b"2")]).build();
        assert_ne!(build().digest(), other.digest());
    }

    #[test]
    fn derived_images_extend_their_base() {
        let base =
            ImageBuilder::from_scratch("base").add_file_layer("COPY a", &[("/a", b"1")]).build();
        let derived = ImageBuilder::from_image("derived", &base)
            .add_file_layer("COPY b", &[("/b", b"2")])
            .build();
        assert!(derived.filesystem().exists("/a"));
        assert!(derived.filesystem().exists("/b"));
        assert!(!base.filesystem().exists("/b"));
    }

    #[test]
    fn shipping_image_matches_papers_footnote() {
        let img = Image::fex_shipping_image();
        let gib = img.size() as f64 / (1024.0 * 1024.0 * 1024.0);
        // "Our current image is 1.04GB, with 122MB Ubuntu files, 300MB of
        // benchmarks' source files, and the rest helper packages."
        assert!((0.95..1.15).contains(&gib), "image is {gib:.2} GiB");
        let breakdown = img.size_breakdown();
        assert!(breakdown[0].0.contains("ubuntu"));
        assert_eq!(breakdown[0].1, 122 * MIB);
        assert_eq!(breakdown[1].1, 300 * MIB);
    }
}
