//! Content digests.
//!
//! A 128-bit FNV-1a-style hash — not cryptographic, but collision-safe
//! enough for reproducibility checks inside a single experiment host,
//! which is all the framework needs (Docker uses SHA-256 for the same
//! structural purpose).

use std::fmt;

/// A 128-bit content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u128);

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fex256:{:032x}", self.0)
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Hashes a byte slice.
pub fn digest_bytes(bytes: &[u8]) -> Digest {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= *b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    Digest(h)
}

/// Incremental digest builder for structured content.
#[derive(Debug, Clone)]
pub struct DigestBuilder {
    state: u128,
}

impl DigestBuilder {
    /// Creates a fresh builder.
    pub fn new() -> Self {
        DigestBuilder { state: FNV_OFFSET }
    }

    /// Feeds bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for b in bytes {
            self.state ^= *b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a string with a length prefix (prevents concatenation
    /// ambiguity between fields).
    pub fn update_str(&mut self, s: &str) -> &mut Self {
        self.update(&(s.len() as u64).to_le_bytes());
        self.update(s.as_bytes())
    }

    /// Finalises the digest.
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

impl Default for DigestBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_deterministic_and_distinct() {
        assert_eq!(digest_bytes(b"abc"), digest_bytes(b"abc"));
        assert_ne!(digest_bytes(b"abc"), digest_bytes(b"abd"));
        assert_ne!(digest_bytes(b""), digest_bytes(b"\0"));
    }

    #[test]
    fn length_prefix_prevents_field_ambiguity() {
        let mut a = DigestBuilder::new();
        a.update_str("ab").update_str("c");
        let mut b = DigestBuilder::new();
        b.update_str("a").update_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn display_is_prefixed_hex() {
        let d = digest_bytes(b"x");
        let s = d.to_string();
        assert!(s.starts_with("fex256:"));
        assert_eq!(s.len(), "fex256:".len() + 32);
    }
}
