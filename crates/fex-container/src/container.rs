//! Running containers: install packages, record environment details.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::digest::{Digest, DigestBuilder};
use crate::fs::FileSystem;
use crate::image::Image;
use crate::registry::{Package, PackageRegistry};

/// Errors from container operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Requested package/version is not in the registry.
    UnknownPackage {
        /// Package name.
        name: String,
        /// Requested version.
        version: String,
    },
    /// A different version of the package is already installed — the
    /// reproducibility rules forbid silent version mixing.
    VersionConflict {
        /// Package name.
        name: String,
        /// Installed version.
        installed: String,
        /// Requested version.
        requested: String,
    },
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::UnknownPackage { name, version } => {
                write!(f, "package `{name}` version `{version}` not found in the registry")
            }
            ContainerError::VersionConflict { name, installed, requested } => write!(
                f,
                "package `{name}` already installed at `{installed}`, requested `{requested}`"
            ),
        }
    }
}

impl Error for ContainerError {}

/// One install action, for the experiment log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallEvent {
    /// Package name.
    pub name: String,
    /// Installed version.
    pub version: String,
    /// Bytes added to the container.
    pub size: u64,
    /// Whether this was pulled in as a dependency.
    pub as_dependency: bool,
}

/// A running container: image + writable layer + installed package set.
#[derive(Debug, Clone)]
pub struct Container {
    image_digest: Digest,
    image_name: String,
    fs: FileSystem,
    installed: BTreeMap<String, (String, u64)>,
    env: BTreeMap<String, String>,
    install_log: Vec<InstallEvent>,
}

impl Container {
    /// Starts a container from an image (adds a writable layer).
    pub fn start(image: &Image) -> Self {
        let mut fs = image.filesystem().clone();
        fs.push_layer(crate::fs::Layer::new());
        Container {
            image_digest: image.digest(),
            image_name: image.name().to_string(),
            fs,
            installed: BTreeMap::new(),
            env: BTreeMap::new(),
            install_log: Vec::new(),
        }
    }

    /// The base image's digest.
    pub fn image_digest(&self) -> Digest {
        self.image_digest
    }

    /// The unified filesystem view.
    pub fn fs(&self) -> &FileSystem {
        &self.fs
    }

    /// Mutable filesystem access (experiment scripts write logs/results).
    pub fn fs_mut(&mut self) -> &mut FileSystem {
        &mut self.fs
    }

    /// Sets an environment variable inside the container.
    pub fn set_env(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.env.insert(key.into(), value.into());
    }

    /// Reads an environment variable.
    pub fn env(&self, key: &str) -> Option<&str> {
        self.env.get(key).map(String::as_str)
    }

    /// All environment variables, sorted by key.
    pub fn env_all(&self) -> &BTreeMap<String, String> {
        &self.env
    }

    /// Installs a package (and its dependencies, depth-first) from the
    /// registry. Idempotent for same-version re-installs.
    ///
    /// # Errors
    ///
    /// [`ContainerError::UnknownPackage`] if the exact version is absent;
    /// [`ContainerError::VersionConflict`] if a different version of the
    /// same package is already present.
    pub fn install(
        &mut self,
        registry: &PackageRegistry,
        name: &str,
        version: &str,
    ) -> Result<(), ContainerError> {
        self.install_inner(registry, name, version, false)
    }

    fn install_inner(
        &mut self,
        registry: &PackageRegistry,
        name: &str,
        version: &str,
        as_dependency: bool,
    ) -> Result<(), ContainerError> {
        if let Some((installed, _)) = self.installed.get(name) {
            if installed == version {
                return Ok(());
            }
            return Err(ContainerError::VersionConflict {
                name: name.to_string(),
                installed: installed.clone(),
                requested: version.to_string(),
            });
        }
        let pkg: Package = registry.fetch(name, version).cloned().ok_or_else(|| {
            ContainerError::UnknownPackage { name: name.to_string(), version: version.to_string() }
        })?;
        for (dep_name, dep_version) in &pkg.deps {
            self.install_inner(registry, dep_name, dep_version, true)?;
        }
        self.fs.write(
            format!("/opt/{}/{}/.installed", pkg.name, pkg.version),
            format!("{} {} {} bytes", pkg.name, pkg.version, pkg.size).into_bytes(),
        );
        self.installed.insert(pkg.name.clone(), (pkg.version.clone(), pkg.size));
        self.install_log.push(InstallEvent {
            name: pkg.name,
            version: pkg.version,
            size: pkg.size,
            as_dependency,
        });
        Ok(())
    }

    /// Whether an exact package version is installed.
    pub fn installed(&self, name: &str, version: &str) -> bool {
        self.installed.get(name).map(|(v, _)| v == version).unwrap_or(false)
    }

    /// Installed `(name, version)` pairs, sorted by name.
    pub fn installed_packages(&self) -> Vec<(String, String)> {
        self.installed.iter().map(|(n, (v, _))| (n.clone(), v.clone())).collect()
    }

    /// Bytes added by installations.
    pub fn installed_size(&self) -> u64 {
        self.installed.values().map(|(_, s)| *s).sum()
    }

    /// The install log, in order.
    pub fn install_log(&self) -> &[InstallEvent] {
        &self.install_log
    }

    /// Digest of the complete experimental environment: image, installed
    /// package set and environment variables. Two containers with equal
    /// environment digests run experiments under identical software stacks
    /// — the paper's reproducibility criterion.
    pub fn environment_digest(&self) -> Digest {
        let mut b = DigestBuilder::new();
        b.update(&self.image_digest.0.to_le_bytes());
        for (name, (version, _)) in &self.installed {
            b.update_str(name);
            b.update_str(version);
        }
        for (k, v) in &self.env {
            b.update_str(k);
            b.update_str(v);
        }
        b.finish()
    }

    /// A human-readable environment report, mirroring the paper's "FEX
    /// outputs various environment details, so that the complete
    /// experimental setup is stored in the log file" (§VI).
    pub fn environment_report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "image: {} ({})", self.image_name, self.image_digest);
        let _ = writeln!(s, "environment digest: {}", self.environment_digest());
        let _ = writeln!(s, "installed packages:");
        for (name, (version, size)) in &self.installed {
            let _ = writeln!(s, "  {name} {version} ({} MiB)", size / (1024 * 1024));
        }
        let _ = writeln!(s, "environment variables:");
        for (k, v) in &self.env {
            let _ = writeln!(s, "  {k}={v}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PackageRegistry, Container) {
        let r = PackageRegistry::standard();
        let c = Container::start(&Image::fex_shipping_image());
        (r, c)
    }

    #[test]
    fn install_resolves_dependencies() {
        let (r, mut c) = setup();
        c.install(&r, "nginx", "1.4.0").unwrap();
        assert!(c.installed("nginx", "1.4.0"));
        assert!(c.installed("openssl", "1.0.1f"));
        assert!(c.fs().exists("/opt/nginx/1.4.0/.installed"));
        let log = c.install_log();
        assert!(log[0].as_dependency);
        assert_eq!(log[1].name, "nginx");
    }

    #[test]
    fn reinstall_same_version_is_idempotent() {
        let (r, mut c) = setup();
        c.install(&r, "gcc", "6.1.0").unwrap();
        c.install(&r, "gcc", "6.1.0").unwrap();
        assert_eq!(c.install_log().iter().filter(|e| e.name == "gcc").count(), 1);
    }

    #[test]
    fn version_conflicts_are_rejected() {
        let (r, mut c) = setup();
        c.install(&r, "gcc", "6.1.0").unwrap();
        let err = c.install(&r, "gcc", "5.4.0").unwrap_err();
        assert!(matches!(err, ContainerError::VersionConflict { .. }));
    }

    #[test]
    fn unknown_packages_are_rejected() {
        let (r, mut c) = setup();
        let err = c.install(&r, "gcc", "99.0").unwrap_err();
        assert_eq!(
            err,
            ContainerError::UnknownPackage { name: "gcc".into(), version: "99.0".into() }
        );
    }

    #[test]
    fn environment_digest_captures_the_full_stack() {
        let (r, mut a) = setup();
        let (_, mut b) = setup();
        a.install(&r, "gcc", "6.1.0").unwrap();
        b.install(&r, "gcc", "6.1.0").unwrap();
        assert_eq!(a.environment_digest(), b.environment_digest());
        b.set_env("ASAN_OPTIONS", "detect_leaks=0");
        assert_ne!(a.environment_digest(), b.environment_digest());
        let (_, mut d) = setup();
        d.install(&r, "gcc", "5.4.0").unwrap();
        assert_ne!(a.environment_digest(), d.environment_digest());
    }

    #[test]
    fn environment_report_lists_everything() {
        let (r, mut c) = setup();
        c.install(&r, "clang", "3.8.0").unwrap();
        c.set_env("BUILD_TYPE", "clang_native");
        let rep = c.environment_report();
        assert!(rep.contains("clang 3.8.0"));
        assert!(rep.contains("BUILD_TYPE=clang_native"));
        assert!(rep.contains("environment digest"));
    }
}
