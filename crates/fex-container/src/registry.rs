//! The simulated "Internet": a versioned package registry.
//!
//! Experiment setup installs pinned versions from here (§II-A of the
//! paper). Package sizes are order-of-magnitude realistic so the image
//! size accounting in the S1 experiment reproduces the paper's numbers.

use std::collections::BTreeMap;

/// Mebibyte, for readable size constants.
pub const MIB: u64 = 1024 * 1024;

/// A versioned installable package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Package {
    /// Package name (e.g. `gcc`).
    pub name: String,
    /// Exact version (e.g. `6.1.0`). The registry may carry several.
    pub version: String,
    /// Installed size in bytes.
    pub size: u64,
    /// Dependencies as `(name, version)` pairs, installed first.
    pub deps: Vec<(String, String)>,
    /// Category, mirroring the paper's three install-script groups.
    pub kind: PackageKind,
}

/// The paper's install-script grouping (Fig 1 / Fig 5: `install/compilers`,
/// `install/dependencies`, `install/benchmarks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackageKind {
    /// Compilers with pinned versions.
    Compiler,
    /// Build/measurement dependencies (gettext, libevent, …).
    Dependency,
    /// Additional benchmarks fetched from elsewhere (apache, nginx, …).
    Benchmark,
    /// Input datasets for suites.
    Inputs,
}

/// The registry.
#[derive(Debug, Clone, Default)]
pub struct PackageRegistry {
    packages: BTreeMap<(String, String), Package>,
}

impl PackageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PackageRegistry::default()
    }

    /// Registers a package.
    pub fn publish(&mut self, p: Package) {
        self.packages.insert((p.name.clone(), p.version.clone()), p);
    }

    /// Fetches an exact version.
    pub fn fetch(&self, name: &str, version: &str) -> Option<&Package> {
        self.packages.get(&(name.to_string(), version.to_string()))
    }

    /// All versions of a package, ascending.
    pub fn versions(&self, name: &str) -> Vec<&str> {
        self.packages.values().filter(|p| p.name == name).map(|p| p.version.as_str()).collect()
    }

    /// All packages.
    pub fn iter(&self) -> impl Iterator<Item = &Package> {
        self.packages.values()
    }

    /// Total installed size of every package in the registry — what the
    /// Docker image would weigh if all dependencies were baked in (the
    /// paper estimates ~17 GB).
    pub fn total_size(&self) -> u64 {
        self.packages.values().map(|p| p.size).sum()
    }

    /// The registry used by the standard Fex distribution: the compilers,
    /// dependencies, benchmarks and inputs Table I lists.
    pub fn standard() -> Self {
        let mut r = PackageRegistry::new();
        let mut add = |name: &str, version: &str, size: u64, deps: &[(&str, &str)], kind| {
            r.publish(Package {
                name: name.into(),
                version: version.into(),
                size,
                deps: deps.iter().map(|(n, v)| (n.to_string(), v.to_string())).collect(),
                kind,
            });
        };
        use PackageKind::*;
        // Compilers (built from source: large).
        add("gcc", "6.1.0", 3600 * MIB, &[("binutils", "2.26")], Compiler);
        add("gcc", "5.4.0", 3400 * MIB, &[("binutils", "2.26")], Compiler);
        add("clang", "3.8.0", 4100 * MIB, &[("cmake", "3.5"), ("binutils", "2.26")], Compiler);
        add("clang", "3.9.1", 4200 * MIB, &[("cmake", "3.5"), ("binutils", "2.26")], Compiler);
        // Dependencies.
        add("binutils", "2.26", 120 * MIB, &[], Dependency);
        add("cmake", "3.5", 90 * MIB, &[], Dependency);
        add("gettext", "0.19", 60 * MIB, &[], Dependency); // PARSEC autoconf needs it
        add("libevent", "2.0.22", 12 * MIB, &[], Dependency);
        add("openssl", "1.0.2g", 40 * MIB, &[], Dependency);
        add("openssl", "1.0.1f", 38 * MIB, &[], Dependency); // heartbleed-era, for security runs
        add("perf", "4.4", 20 * MIB, &[], Dependency);
        // Additional benchmarks (fetched, not kept under src/).
        add("apache", "2.4.18", 85 * MIB, &[("openssl", "1.0.2g")], Benchmark);
        add("apache", "2.2.21", 80 * MIB, &[("openssl", "1.0.1f")], Benchmark); // CVE-vulnerable
        add("nginx", "1.10.1", 25 * MIB, &[("openssl", "1.0.2g")], Benchmark);
        add("nginx", "1.4.0", 22 * MIB, &[("openssl", "1.0.1f")], Benchmark); // CVE-2013-2028
        add("memcached", "1.4.25", 8 * MIB, &[("libevent", "2.0.22")], Benchmark);
        add("ripe", "2015.04", MIB, &[], Benchmark);
        // Input datasets.
        add("phoenix_inputs", "1.0", 510 * MIB, &[], Inputs);
        add("splash_inputs", "3.0", 140 * MIB, &[], Inputs);
        add("parsec_inputs", "3.0", 900 * MIB, &[], Inputs);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_pinned_versions() {
        let r = PackageRegistry::standard();
        assert!(r.fetch("gcc", "6.1.0").is_some());
        assert!(r.fetch("clang", "3.8.0").is_some());
        assert!(r.fetch("gcc", "7.0.0").is_none());
        assert_eq!(r.versions("nginx"), vec!["1.10.1", "1.4.0"]);
    }

    #[test]
    fn dependencies_are_recorded() {
        let r = PackageRegistry::standard();
        let nginx = r.fetch("nginx", "1.4.0").unwrap();
        assert_eq!(nginx.deps, vec![("openssl".to_string(), "1.0.1f".to_string())]);
    }

    #[test]
    fn all_dependencies_baked_in_would_be_enormous() {
        // The paper: "the Docker image would swell to approx. 17GB in size
        // if all dependencies would be built-in".
        let r = PackageRegistry::standard();
        let gib = r.total_size() as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!(gib > 15.0 && gib < 25.0, "total registry size {gib:.1} GiB out of band");
    }
}
