//! Layered copy-on-write filesystem.
//!
//! Like Docker's overlay filesystem: an image is an ordered list of
//! read-only [`Layer`]s; a container adds one writable layer on top.
//! Deletions are recorded as whiteouts so lower layers stay immutable.

use std::collections::BTreeMap;

use crate::digest::{Digest, DigestBuilder};

/// One filesystem layer: path → file contents, plus whiteouts and bulk
/// blobs.
///
/// A *blob* is a size-only entry standing in for bulk content (the Ubuntu
/// base tree, compiler install trees) whose exact bytes never matter to an
/// experiment: it participates in size accounting and digests without
/// being materialised.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Layer {
    files: BTreeMap<String, Vec<u8>>,
    blobs: BTreeMap<String, u64>,
    whiteouts: BTreeMap<String, ()>,
}

impl Layer {
    /// An empty layer.
    pub fn new() -> Self {
        Layer::default()
    }

    /// Adds or replaces a file in this layer.
    pub fn write(&mut self, path: impl Into<String>, data: impl Into<Vec<u8>>) {
        let path = path.into();
        self.whiteouts.remove(&path);
        self.blobs.remove(&path);
        self.files.insert(path, data.into());
    }

    /// Adds a size-only blob entry at `path`.
    pub fn write_blob(&mut self, path: impl Into<String>, size: u64) {
        let path = path.into();
        self.whiteouts.remove(&path);
        self.files.remove(&path);
        self.blobs.insert(path, size);
    }

    /// Records a deletion (whiteout) for `path`.
    pub fn remove(&mut self, path: impl Into<String>) {
        let path = path.into();
        self.files.remove(&path);
        self.blobs.remove(&path);
        self.whiteouts.insert(path, ());
    }

    /// Total bytes stored in this layer (files + blobs).
    pub fn size(&self) -> u64 {
        self.files.values().map(|d| d.len() as u64).sum::<u64>() + self.blobs.values().sum::<u64>()
    }

    /// Number of entries (files + blobs) in this layer.
    pub fn file_count(&self) -> usize {
        self.files.len() + self.blobs.len()
    }

    /// Content digest of this layer (paths, contents, blob sizes and
    /// whiteouts).
    pub fn digest(&self) -> Digest {
        let mut b = DigestBuilder::new();
        for (path, data) in &self.files {
            b.update_str(path);
            b.update(&(data.len() as u64).to_le_bytes());
            b.update(data);
        }
        for (path, size) in &self.blobs {
            b.update_str("blob!");
            b.update_str(path);
            b.update(&size.to_le_bytes());
        }
        for path in self.whiteouts.keys() {
            b.update_str("wh!");
            b.update_str(path);
        }
        b.finish()
    }
}

/// A stack of layers presenting a unified view.
#[derive(Debug, Clone, Default)]
pub struct FileSystem {
    layers: Vec<Layer>,
}

impl FileSystem {
    /// An empty filesystem.
    pub fn new() -> Self {
        FileSystem::default()
    }

    /// Pushes a layer on top.
    pub fn push_layer(&mut self, layer: Layer) {
        self.layers.push(layer);
    }

    /// The layers, bottom-up.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the topmost (writable) layer, creating one if the
    /// filesystem is empty.
    pub fn top_layer_mut(&mut self) -> &mut Layer {
        if self.layers.is_empty() {
            self.layers.push(Layer::new());
        }
        self.layers.last_mut().expect("just ensured nonempty")
    }

    /// Reads a file through the layer stack (top wins; whiteouts hide
    /// lower layers).
    pub fn read(&self, path: &str) -> Option<&[u8]> {
        for layer in self.layers.iter().rev() {
            if layer.whiteouts.contains_key(path) {
                return None;
            }
            if let Some(d) = layer.files.get(path) {
                return Some(d);
            }
        }
        None
    }

    /// Whether `path` exists in the unified view.
    pub fn exists(&self, path: &str) -> bool {
        self.read(path).is_some()
    }

    /// Writes into the top layer (copy-on-write semantics).
    pub fn write(&mut self, path: impl Into<String>, data: impl Into<Vec<u8>>) {
        self.top_layer_mut().write(path, data);
    }

    /// Deletes from the unified view via a whiteout in the top layer.
    pub fn remove(&mut self, path: impl Into<String>) {
        self.top_layer_mut().remove(path);
    }

    /// All visible paths under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut seen: BTreeMap<&str, bool> = BTreeMap::new();
        for layer in &self.layers {
            for path in layer.files.keys() {
                if path.starts_with(prefix) {
                    seen.entry(path).or_insert(true);
                }
            }
            for path in layer.whiteouts.keys() {
                if let Some(v) = seen.get_mut(path.as_str()) {
                    *v = false;
                }
            }
        }
        // Whiteouts in higher layers than a file's layer are handled by the
        // per-path read below (the pass above is a fast pre-filter).
        seen.into_iter().filter(|(p, _)| self.exists(p)).map(|(p, _)| p.to_string()).collect()
    }

    /// Total unified size (visible files only).
    pub fn visible_size(&self) -> u64 {
        self.list("").iter().map(|p| self.read(p).map(|d| d.len() as u64).unwrap_or(0)).sum()
    }

    /// Sum of all layer sizes (what the image actually ships).
    pub fn stored_size(&self) -> u64 {
        self.layers.iter().map(|l| l.size()).sum()
    }

    /// Digest over all layer digests, in order.
    pub fn digest(&self) -> Digest {
        let mut b = DigestBuilder::new();
        for l in &self.layers {
            b.update(&l.digest().0.to_le_bytes());
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_layers_shadow_lower() {
        let mut base = Layer::new();
        base.write("/etc/version", b"1".to_vec());
        let mut top = Layer::new();
        top.write("/etc/version", b"2".to_vec());
        let mut fs = FileSystem::new();
        fs.push_layer(base);
        fs.push_layer(top);
        assert_eq!(fs.read("/etc/version"), Some(b"2".as_slice()));
    }

    #[test]
    fn whiteouts_hide_files() {
        let mut base = Layer::new();
        base.write("/a", b"x".to_vec());
        let mut fs = FileSystem::new();
        fs.push_layer(base);
        fs.push_layer(Layer::new());
        assert!(fs.exists("/a"));
        fs.remove("/a");
        assert!(!fs.exists("/a"));
        // The lower layer is untouched.
        assert_eq!(fs.layers()[0].file_count(), 1);
    }

    #[test]
    fn rewriting_after_whiteout_restores_visibility() {
        let mut fs = FileSystem::new();
        fs.write("/a", b"1".to_vec());
        fs.remove("/a");
        fs.write("/a", b"2".to_vec());
        assert_eq!(fs.read("/a"), Some(b"2".as_slice()));
    }

    #[test]
    fn listing_respects_prefix_and_whiteouts() {
        let mut fs = FileSystem::new();
        fs.write("/src/a.c", b"".to_vec());
        fs.write("/src/b.c", b"".to_vec());
        fs.write("/etc/x", b"".to_vec());
        fs.remove("/src/b.c");
        assert_eq!(fs.list("/src"), vec!["/src/a.c".to_string()]);
    }

    #[test]
    fn digests_change_with_content() {
        let mut a = FileSystem::new();
        a.write("/a", b"1".to_vec());
        let mut b = FileSystem::new();
        b.write("/a", b"2".to_vec());
        assert_ne!(a.digest(), b.digest());
        let mut a2 = FileSystem::new();
        a2.write("/a", b"1".to_vec());
        assert_eq!(a.digest(), a2.digest());
    }

    #[test]
    fn sizes_distinguish_stored_and_visible() {
        let mut base = Layer::new();
        base.write("/a", vec![0u8; 100]);
        let mut top = Layer::new();
        top.write("/a", vec![0u8; 40]);
        let mut fs = FileSystem::new();
        fs.push_layer(base);
        fs.push_layer(top);
        assert_eq!(fs.stored_size(), 140);
        assert_eq!(fs.visible_size(), 40);
    }
}
