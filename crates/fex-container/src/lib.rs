//! # fex-container — simulated container runtime
//!
//! The paper builds its reproducibility story on Docker: the shipped image
//! contains only benchmark sources and scripts; compilers and other
//! dependencies are installed *inside* the container at experiment-setup
//! time, pinned to exact versions (§II-A). This crate reproduces the parts
//! of that story the framework exercises, without a Docker daemon:
//!
//! * a **layered copy-on-write filesystem** ([`FileSystem`]) with
//!   per-layer and per-image **content digests** — identical build recipes
//!   yield identical digests, which is the reproducibility guarantee;
//! * a **versioned package registry** ([`PackageRegistry`]) standing in
//!   for "the Internet": gcc-6.1, clang-3.8.0, benchmark inputs, server
//!   sources, each with realistic sizes and dependency edges;
//! * an **image builder and container runtime** ([`Image`], [`Container`])
//!   with size accounting that reproduces the paper's numbers (a ~1 GiB
//!   shipped image vs ~17 GiB if every dependency were baked in).
//!
//! ## Example
//!
//! ```
//! use fex_container::{Container, Image, PackageRegistry};
//!
//! let registry = PackageRegistry::standard();
//! let image = Image::fex_shipping_image();
//! let mut c = Container::start(&image);
//! c.install(&registry, "gcc", "6.1.0")?;
//! assert!(c.installed("gcc", "6.1.0"));
//! # Ok::<(), fex_container::ContainerError>(())
//! ```

mod container;
mod digest;
mod fs;
mod image;
mod registry;

pub use container::{Container, ContainerError, InstallEvent};
pub use digest::{digest_bytes, Digest, DigestBuilder};
pub use fs::{FileSystem, Layer};
pub use image::{Image, ImageBuilder};
pub use registry::{Package, PackageRegistry};
