//! The §IV-C case study: the RIPE security testbed (Table II).
//!
//! ```text
//! >> fex.py run -n ripe -t gcc_native clang_native
//! ```
//!
//! Also runs the hardened-machine extension (NX + canaries + ASLR) to
//! show the mitigations the paper's configuration disables.
//! Run with: `cargo run --release --example ripe_security`

use fex_cc::BuildOptions;
use fex_core::{ExperimentConfig, Fex};
use fex_ripe::{run_testbed, TestbedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fex = Fex::new();
    fex.install("gcc-6.1")?;
    fex.install("clang-3.8")?;
    fex.install("ripe")?;

    let config = ExperimentConfig::new("ripe").types(vec!["gcc_native", "clang_native"]);
    let frame = fex.run(&config)?;

    println!("TABLE II: RIPE security benchmark results");
    println!("{:<16} {:>12} {:>10}", "Compiler", "Successful", "Failed");
    for row in frame.iter() {
        let ty = row[0].to_cell_string();
        let label = if ty.starts_with("gcc") { "Native (GCC)" } else { "Native (Clang)" };
        println!("{label:<16} {:>12} {:>10}", row[2].to_cell_string(), row[3].to_cell_string());
    }

    // Extension: the same matrix on a hardened machine.
    println!("\nextension: hardened machine (NX + canaries + ASLR):");
    for opts in [BuildOptions::gcc(), BuildOptions::clang()] {
        let s = run_testbed(&opts, &TestbedConfig::hardened());
        println!(
            "  {:<14} successful {:>4}   failed {:>4}   detected-by-canary {:>4}",
            opts.build_info(),
            s.successful,
            s.failed,
            s.detected
        );
    }
    // And with an ASan build, which catches the overflows themselves.
    let s = run_testbed(&BuildOptions::gcc().with_asan(), &TestbedConfig::paper());
    println!(
        "  {:<14} successful {:>4}   failed {:>4}   detected-by-asan {:>4}",
        "gcc+asan", s.successful, s.failed, s.detected
    );
    Ok(())
}
