//! AddressSanitizer performance and memory overheads on Phoenix — the
//! §III-A walkthrough experiment ("the performance overhead of Google's
//! AddressSanitizer on the Phoenix benchmark suite").
//!
//! ```text
//! >> fex.py run -n phoenix -t gcc_native gcc_asan
//! ```
//!
//! Run with: `cargo run --release --example asan_overhead`

use fex_core::collect::stats;
use fex_core::plot::normalize_against;
use fex_core::{ExperimentConfig, Fex, PlotRequest};
use fex_suites::InputSize;
use fex_vm::MeasureTool;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fex = Fex::new();
    fex.install("gcc-6.1")?;
    fex.install("phoenix_inputs")?;

    // Performance overhead (perf-stat tool).
    let config = ExperimentConfig::new("phoenix")
        .types(vec!["gcc_native", "gcc_asan"])
        .input(InputSize::Small)
        .repetitions(2);
    let frame = fex.run(&config)?.clone();
    let norm = normalize_against(&frame, "benchmark", "type", "time", "gcc_native")?;
    let asan = norm.filter_eq("type", "gcc_asan")?;
    println!("AddressSanitizer runtime overhead (w.r.t. native GCC):");
    let mut ratios = Vec::new();
    for row in asan.iter() {
        let r = row[2].as_num().unwrap_or(0.0);
        ratios.push(r);
        println!("  {:<20} {r:>6.2}x", row[0].to_cell_string());
    }
    println!("  {:<20} {:>6.2}x (geomean)", "All", stats::geomean(&ratios));

    // Memory overhead (time tool / max RSS).
    let mem_cfg = ExperimentConfig::new("phoenix")
        .types(vec!["gcc_native", "gcc_asan"])
        .input(InputSize::Small)
        .tool(MeasureTool::Time);
    let mem_frame = fex.run(&mem_cfg)?.clone();
    let mem_norm =
        normalize_against(&mem_frame, "benchmark", "type", "maxrss_bytes", "gcc_native")?;
    let asan_mem = mem_norm.filter_eq("type", "gcc_asan")?;
    println!("\nAddressSanitizer memory overhead (max RSS, w.r.t. native GCC):");
    for row in asan_mem.iter() {
        println!("  {:<20} {:>6.2}x", row[0].to_cell_string(), row[2].as_num().unwrap_or(0.0));
    }

    let plot = fex.plot("phoenix", PlotRequest::Memory)?;
    let out = std::path::Path::new("target/fex-results");
    std::fs::create_dir_all(out)?;
    std::fs::write(out.join("asan_memory_overhead.svg"), plot.to_svg())?;
    println!("\nwrote target/fex-results/asan_memory_overhead.svg");
    Ok(())
}
