//! The §IV-B case study: Nginx throughput-latency under GCC vs Clang
//! builds (Fig 7 — "remote clients fetch a 2K static web-page over a 1Gb
//! network").
//!
//! ```text
//! >> fex.py run -n nginx -t gcc_native clang_native
//! ```
//!
//! Run with: `cargo run --release --example nginx_throughput`

use fex_core::{ExperimentConfig, Fex, PlotRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fex = Fex::new();
    fex.install("gcc-6.1")?;
    fex.install("clang-3.8")?;
    fex.install("nginx")?;

    let config = ExperimentConfig::new("nginx").types(vec!["gcc_native", "clang_native"]);
    let frame = fex.run(&config)?;

    println!("throughput-latency sweep:");
    println!(
        "{:<14} {:>12} {:>12} {:>9} {:>9}",
        "type", "offered/s", "achieved/s", "mean ms", "p99 ms"
    );
    for row in frame.iter() {
        let ty = row[1].to_cell_string();
        let offered = row[2].as_num().unwrap_or(0.0);
        let tput = row[3].as_num().unwrap_or(0.0);
        let mean = row[4].as_num().unwrap_or(0.0);
        let p99 = row[7].as_num().unwrap_or(0.0);
        println!("{ty:<14} {offered:>12.0} {tput:>12.0} {mean:>9.3} {p99:>9.3}");
    }

    let plot = fex.plot("nginx", PlotRequest::ThroughputLatency)?;
    println!("\n{}", plot.to_ascii());
    let out = std::path::Path::new("target/fex-results");
    std::fs::create_dir_all(out)?;
    std::fs::write(out.join("fig7_nginx.svg"), plot.to_svg())?;
    println!("wrote target/fex-results/fig7_nginx.svg");
    Ok(())
}
