//! The §IV-A case study: compare Clang against GCC on SPLASH-3 (Fig 6).
//!
//! ```text
//! >> fex.py run -n splash -t gcc_native clang_native
//! ```
//!
//! Prints the normalized-runtime table and writes the Fig 6 barplot.
//! Run with: `cargo run --release --example splash_compare`

use fex_core::collect::stats;
use fex_core::plot::normalize_against;
use fex_core::{ExperimentConfig, Fex, PlotRequest};
use fex_suites::InputSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fex = Fex::new();
    fex.install("gcc-6.1")?;
    fex.install("clang-3.8")?;
    fex.install("splash_inputs")?;

    let config = ExperimentConfig::new("splash")
        .types(vec!["gcc_native", "clang_native"])
        .input(InputSize::Small)
        .repetitions(2);
    let frame = fex.run(&config)?;

    // Normalised runtimes, Fig 6 style.
    let norm = normalize_against(frame, "benchmark", "type", "time", "gcc_native")?;
    println!("normalized runtime w.r.t. native GCC:");
    let clang = norm.filter_eq("type", "clang_native")?;
    let mut ratios = Vec::new();
    for row in clang.iter() {
        let bench = row[0].to_cell_string();
        let ratio = row[2].as_num().unwrap_or(0.0);
        ratios.push(ratio);
        println!("  {bench:<16} {ratio:>6.3}x");
    }
    println!(
        "  {:<16} {:>6.3}x  (geometric mean, the paper's `All` bar)",
        "All",
        stats::geomean(&ratios)
    );

    let plot = fex.plot("splash", PlotRequest::Perf)?;
    println!("\n{}", plot.to_ascii());
    let out = std::path::Path::new("target/fex-results");
    std::fs::create_dir_all(out)?;
    std::fs::write(out.join("fig6_splash.svg"), plot.to_svg())?;
    println!("wrote target/fex-results/fig6_splash.svg");
    Ok(())
}
