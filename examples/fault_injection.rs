//! Fault injection and resilient execution: a persistently-trapping
//! benchmark is quarantined while the rest of the suite completes, a
//! transient fault is absorbed by retries, and disabled injection is
//! byte-identical to a plain run.
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use fex_core::config::{ExperimentConfig, FaultInjection};
use fex_core::edd::FlakinessGate;
use fex_core::{Fex, RunPolicy};
use fex_vm::{FaultKind, FaultPlan};

fn main() {
    // 1. Clean baseline run.
    let mut fex = Fex::new();
    fex.install("gcc-6.1").unwrap();
    fex.install("phoenix_inputs").unwrap();
    let clean = ExperimentConfig::new("phoenix").types(vec!["gcc_native"]);
    let df = fex.run(&clean).unwrap();
    println!("clean: {} rows", df.len());
    let clean_csv = fex.result_csv("phoenix").unwrap();
    println!("clean failure report: {}", fex.failure_report("phoenix").unwrap().summary());

    // 2. Same experiment with kmeans persistently trapping.
    let mut fex2 = Fex::new();
    fex2.install("gcc-6.1").unwrap();
    fex2.install("phoenix_inputs").unwrap();
    let faulty = ExperimentConfig::new("phoenix")
        .types(vec!["gcc_native"])
        .fault(FaultInjection::for_benchmark("kmeans", FaultPlan::persistent(FaultKind::Trap)));
    let df = fex2.run(&faulty).unwrap();
    println!("faulty: {} rows (partial frame, run did NOT abort)", df.len());
    let report = fex2.failure_report("phoenix").unwrap();
    println!("faulty failure report: {}", report.summary());
    println!("quarantined: {:?}", report.quarantined_benchmarks());
    println!("--- failures.csv ---");
    print!("{}", fex2.failure_csv("phoenix").unwrap());
    println!("--------------------");
    let verdict = fex2.edd_flakiness_check("phoenix", &FlakinessGate::default()).unwrap();
    println!("strict CI gate: {}", verdict.summary());

    // 3. Injection disabled must be byte-identical to no injection.
    let mut fex3 = Fex::new();
    fex3.install("gcc-6.1").unwrap();
    fex3.install("phoenix_inputs").unwrap();
    let disabled = ExperimentConfig::new("phoenix")
        .types(vec!["gcc_native"])
        .fault(FaultInjection::everywhere(FaultPlan::none()))
        .resilience(RunPolicy::default().retries(5));
    fex3.run(&disabled).unwrap();
    let disabled_csv = fex3.result_csv("phoenix").unwrap();
    println!("disabled injection byte-identical to clean: {}", disabled_csv == clean_csv);

    // 4. Transient fault: recovers via retry, numbers intact.
    let mut fex4 = Fex::new();
    fex4.install("gcc-6.1").unwrap();
    fex4.install("phoenix_inputs").unwrap();
    let transient = ExperimentConfig::new("phoenix")
        .types(vec!["gcc_native"])
        .fault(FaultInjection::everywhere(FaultPlan::spurious(0.5, FaultKind::Trap, 4)));
    let rows = fex4.run(&transient).unwrap().len();
    let report = fex4.failure_report("phoenix").unwrap();
    println!(
        "transient: {} rows, retry_rate {:.2}, quarantined {:?}",
        rows,
        report.retry_rate(),
        report.quarantined_benchmarks()
    );
}
