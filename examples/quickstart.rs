//! Quickstart: the paper's §II-A workflow end to end.
//!
//! ```text
//! >> fex.py install -n gcc-6.1
//! >> fex.py install -n phoenix_inputs
//! >> fex.py run -n phoenix -t gcc_native gcc_asan
//! >> fex.py plot -n phoenix -t perf
//! ```
//!
//! Run with: `cargo run --release --example quickstart`

use fex_core::{ExperimentConfig, Fex, PlotRequest};
use fex_suites::InputSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fex = Fex::new();

    // --- setup stage: install pinned versions inside the container -----
    fex.install("gcc-6.1")?;
    fex.install("phoenix_inputs")?;
    println!("environment digest: {}\n", fex.container().environment_digest());

    // --- run stage: build, run, collect --------------------------------
    let config = ExperimentConfig::new("phoenix")
        .types(vec!["gcc_native", "gcc_asan"])
        .input(InputSize::Small)
        .repetitions(2);
    let frame = fex.run(&config)?;
    println!("collected {} measurement rows", frame.len());

    // --- plot stage -----------------------------------------------------
    let plot = fex.plot("phoenix", PlotRequest::Perf)?;
    println!("{}", plot.to_ascii());

    let out = std::path::Path::new("target/fex-results");
    std::fs::create_dir_all(out)?;
    std::fs::write(out.join("quickstart_phoenix.svg"), plot.to_svg())?;
    std::fs::write(
        out.join("quickstart_phoenix.csv"),
        fex.result_csv("phoenix").expect("csv was stored"),
    )?;
    println!("wrote target/fex-results/quickstart_phoenix.{{svg,csv}}");
    Ok(())
}
