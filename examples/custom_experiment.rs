//! Extensibility walkthrough (§III-A): add a brand-new benchmark, a new
//! build type and a custom experiment — the end-user effort the paper's
//! case studies quantify in LoC.
//!
//! Everything here is ordinary user code against the public API:
//!   1. a new benchmark program (Cmm source),
//!   2. a new type-specific "makefile" layer (`gcc_o0`, ~6 lines),
//!   3. a custom runner usage via the library's building blocks.
//!
//! Run with: `cargo run --release --example custom_experiment`

use fex_core::build::{Assign, BuildSystem, MakeLayer, MakefileSet};
use fex_core::collect::{stats, DataFrame};
use fex_core::plot::{barplot_from_frame, normalize_against};
use fex_vm::{Machine, MachineConfig, MeasureTool, Measurement};

/// (1) The new benchmark: a string-reversal microbenchmark.
const REVERSE: &str = r#"
global buf;

fn main(n) -> int {
  buf = alloc(n + 8);
  var i = 0;
  while (i < n) { storeb(buf + i, 97 + i % 26); i += 1; }
  storeb(buf + n, 0);
  var passes = 0;
  while (passes < 8) {
    var lo = 0;
    var hi = n - 1;
    while (lo < hi) {
      var t = loadb(buf + lo);
      storeb(buf + lo, loadb(buf + hi));
      storeb(buf + hi, t);
      lo += 1;
      hi -= 1;
    }
    passes += 1;
  }
  var check = loadb(buf) * 256 + loadb(buf + n - 1);
  print_int(check);
  return check;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (2) Register a new build type: unoptimised gcc. This is the whole
    // "compiler-specific makefile" of the paper's case studies.
    let mut makefiles = MakefileSet::standard();
    makefiles.add(MakeLayer {
        name: "gcc_o0".into(),
        include: Some("gcc_native".into()),
        vars: vec![("CFLAGS".into(), Assign::Set, "-O0".into())],
    });
    let mut build = BuildSystem::new(makefiles);

    // (3) A hand-rolled experiment loop over the new benchmark.
    let mut df = DataFrame::new(vec!["benchmark", "type", "time"]);
    for ty in ["gcc_native", "gcc_o0", "clang_native"] {
        let debug = ty.ends_with("_o0");
        let artifact = build.build("reverse", REVERSE, ty, debug, false)?;
        for _rep in 0..3 {
            let machine = Machine::new(MachineConfig::default());
            let run = machine.load(&artifact.program).run_entry(&[20_000])?;
            let m = Measurement::extract(MeasureTool::PerfStat, &run);
            df.push(vec!["reverse".into(), ty.into(), m.get("time").unwrap_or(0.0).into()]);
        }
    }

    let norm = normalize_against(&df, "benchmark", "type", "time", "gcc_native")?;
    println!("custom benchmark, normalized runtime w.r.t. gcc -O2:");
    for row in norm.iter() {
        println!("  {:<14} {:>7.3}x", row[1].to_cell_string(), row[2].as_num().unwrap_or(0.0));
    }

    let agg = df.group_agg(&["type"], "time", stats::mean)?;
    let plot = barplot_from_frame(&agg, "type", "type", "time", "custom experiment")?;
    println!("\n{}", plot.to_ascii());
    Ok(())
}
