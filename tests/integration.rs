//! Cross-crate integration tests: the full install → build → run →
//! collect → plot pipeline, exercised the way a user would drive it.

use fex_core::collect::{stats, DataFrame};
use fex_core::plot::normalize_against;
use fex_core::{ExperimentConfig, Fex, FexError, PlotRequest};
use fex_suites::InputSize;
use fex_vm::MeasureTool;

fn fex_ready() -> Fex {
    let mut fex = Fex::new();
    for script in ["gcc-6.1", "clang-3.8", "phoenix_inputs", "splash_inputs", "parsec_inputs"] {
        fex.install(script).expect("standard install scripts work");
    }
    fex
}

#[test]
fn full_phoenix_pipeline_with_asan() {
    let mut fex = fex_ready();
    let config = ExperimentConfig::new("phoenix")
        .types(vec!["gcc_native", "gcc_asan"])
        .input(InputSize::Test)
        .repetitions(2);
    let frame = fex.run(&config).unwrap().clone();
    // 7 programs × 2 types × 2 reps.
    assert_eq!(frame.len(), 28);

    // ASan must cost time on every benchmark.
    let norm = normalize_against(&frame, "benchmark", "type", "time", "gcc_native").unwrap();
    let asan = norm.filter_eq("type", "gcc_asan").unwrap();
    for row in asan.iter() {
        let ratio = row[2].as_num().unwrap();
        assert!(ratio > 1.1, "asan should slow down {} (got {ratio:.2}x)", row[0].to_cell_string());
        assert!(ratio < 20.0, "implausible asan overhead {ratio:.2}x");
    }

    // CSV round-trips through the container filesystem.
    let csv = fex.result_csv("phoenix").unwrap();
    let parsed = DataFrame::from_csv(&csv).unwrap();
    assert_eq!(parsed.len(), frame.len());

    // Plot renders.
    let plot = fex.plot("phoenix", PlotRequest::Perf).unwrap();
    assert!(plot.to_svg().contains("<svg"));
    assert!(!plot.to_ascii().is_empty());
}

#[test]
fn splash_reproduces_fig6_shape_at_test_size() {
    let mut fex = fex_ready();
    let config = ExperimentConfig::new("splash")
        .types(vec!["gcc_native", "clang_native"])
        .input(InputSize::Test);
    let frame = fex.run(&config).unwrap().clone();
    let norm = normalize_against(&frame, "benchmark", "type", "time", "gcc_native").unwrap();
    let clang = norm.filter_eq("type", "clang_native").unwrap();
    let mut ratios = std::collections::BTreeMap::new();
    for row in clang.iter() {
        ratios.insert(row[0].to_cell_string(), row[2].as_num().unwrap());
    }
    // Fig 6 shape: clang slower on every benchmark, slightly worse
    // overall, and the FP-heavy kernels (fft among them) worse than the
    // int-heavy ones. (The paper's extreme 2x FFT outlier stems from
    // vectorisation differences our scalar cost model does not include —
    // see EXPERIMENTS.md.)
    let all: Vec<f64> = ratios.values().copied().collect();
    let geo = stats::geomean(&all);
    assert!(geo >= 1.0, "clang geomean {geo:.3} unexpectedly beats gcc");
    for (bench, r) in &ratios {
        assert!(*r >= 0.99, "clang should not win on {bench} (ratio {r:.3})");
    }
    let fft = ratios["fft"];
    let volrend = ratios["volrend"];
    assert!(
        fft > volrend,
        "fp-heavy fft ({fft:.3}) should be worse for clang than int-heavy volrend ({volrend:.3})"
    );
}

#[test]
fn multithreading_scales_runtime_down() {
    let mut fex = fex_ready();
    let config = ExperimentConfig::new("splash")
        .types(vec!["gcc_native"])
        .benchmark("barnes")
        .threads(vec![1, 4])
        .input(InputSize::Test);
    let frame = fex.run(&config).unwrap().clone();
    let t = |m: &str| -> f64 {
        frame
            .filter_eq("threads", m)
            .unwrap()
            .column_values("time")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_num())
            .next()
            .unwrap()
    };
    assert!(t("4") < t("1") * 0.7, "4 threads ({}) should beat 1 thread ({})", t("4"), t("1"));
}

#[test]
fn memory_tool_reports_asan_rss_overhead() {
    let mut fex = fex_ready();
    let config = ExperimentConfig::new("phoenix")
        .types(vec!["gcc_native", "gcc_asan"])
        .benchmark("histogram")
        .input(InputSize::Test)
        .tool(MeasureTool::Time);
    let frame = fex.run(&config).unwrap().clone();
    let rss = |ty: &str| -> f64 {
        frame
            .filter_eq("type", ty)
            .unwrap()
            .column_values("maxrss_bytes")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_num())
            .next()
            .unwrap()
    };
    assert!(rss("gcc_asan") > rss("gcc_native"), "redzones must cost memory");
}

#[test]
fn cache_tool_populates_miss_columns() {
    let mut fex = fex_ready();
    let config = ExperimentConfig::new("micro")
        .benchmark("ptrchase")
        .input(InputSize::Small)
        .tool(MeasureTool::PerfStatMemory);
    let frame = fex.run(&config).unwrap().clone();
    let row = frame.iter().next().unwrap().to_vec();
    let col = |name: &str| frame.col(name).unwrap();
    assert!(row[col("l1_misses")].as_num().unwrap() > 0.0);
    assert!(row[col("l1_accesses")].as_num().unwrap() > 0.0);
    let plot = fex.plot("micro", PlotRequest::CacheStats).unwrap();
    assert!(plot.to_svg().contains("<rect"));
}

#[test]
fn nginx_experiment_has_the_fig7_shape() {
    let mut fex = Fex::new();
    fex.install("gcc-6.1").unwrap();
    fex.install("clang-3.8").unwrap();
    fex.install("nginx").unwrap();
    let config = ExperimentConfig::new("nginx").types(vec!["gcc_native", "clang_native"]);
    let frame = fex.run(&config).unwrap().clone();
    let max_tput = |ty: &str| -> f64 {
        frame
            .filter_eq("type", ty)
            .unwrap()
            .column_values("throughput")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_num())
            .fold(0.0, f64::max)
    };
    let g = max_tput("gcc_native");
    let c = max_tput("clang_native");
    assert!(g > c, "gcc build must saturate higher ({g:.0} vs {c:.0})");
    assert!(g > 10_000.0 && g < 120_000.0, "throughput {g:.0} outside Fig 7 ballpark");
    let plot = fex.plot("nginx", PlotRequest::ThroughputLatency).unwrap();
    assert!(plot.to_svg().contains("circle"));
}

#[test]
fn missing_install_is_a_clear_error() {
    let mut fex = Fex::new();
    let config = ExperimentConfig::new("splash");
    match fex.run(&config) {
        Err(FexError::Config(msg)) => assert!(msg.contains("fex install"), "{msg}"),
        other => panic!("expected config error, got {other:?}"),
    }
}

#[test]
fn variable_input_experiment_sweeps_sizes() {
    let mut fex = fex_ready();
    let config = ExperimentConfig::new("phoenix_var")
        .types(vec!["gcc_native"])
        .benchmark("linear_regression");
    let frame = fex.run(&config).unwrap().clone();
    let sizes = frame.distinct("input").unwrap();
    assert_eq!(sizes, vec!["test", "small", "native"]);
    // Larger inputs take longer.
    let t = |s: &str| {
        frame
            .filter_eq("input", s)
            .unwrap()
            .column_values("time")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_num())
            .next()
            .unwrap()
    };
    assert!(t("native") > t("test"));
}

#[test]
fn memcached_and_apache_server_experiments_run() {
    let mut fex = Fex::new();
    for s in ["gcc-6.1", "memcached", "apache"] {
        fex.install(s).unwrap();
    }
    let mem =
        fex.run(&ExperimentConfig::new("memcached").types(vec!["gcc_native"])).unwrap().clone();
    let apa = fex.run(&ExperimentConfig::new("apache").types(vec!["gcc_native"])).unwrap().clone();
    let max_tput = |df: &DataFrame| {
        df.column_values("throughput")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_num())
            .fold(0.0, f64::max)
    };
    // Memcached's tiny responses are not link-bound: it must sustain far
    // higher message rates than a 2 KB page server.
    assert!(
        max_tput(&mem) > max_tput(&apa) * 2.0,
        "memcached {:.0} vs apache {:.0}",
        max_tput(&mem),
        max_tput(&apa)
    );
    // Apache's thread-pool dispatch gives it a higher latency floor than
    // memcached's event loop.
    let floor = |df: &DataFrame| {
        df.column_values("mean_ms")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_num())
            .fold(f64::INFINITY, f64::min)
    };
    assert!(floor(&apa) > floor(&mem));
}

#[test]
fn parsec_suite_runs_through_the_framework() {
    let mut fex = fex_ready();
    let config = ExperimentConfig::new("parsec")
        .types(vec!["gcc_native"])
        .benchmark("blackscholes")
        .input(InputSize::Test)
        .repetitions(2);
    let df = fex.run(&config).unwrap().clone();
    assert_eq!(df.len(), 2);
    assert!(df.column_values("time").unwrap()[0].as_num().unwrap() > 0.0);
}

#[test]
fn runtime_faults_surface_as_run_errors() {
    // A benchmark that traps (division by zero) must produce a
    // FexError::Run with the benchmark named, not a panic.
    use fex_core::build::{BuildSystem, MakefileSet};
    let mut build = BuildSystem::new(MakefileSet::standard());
    let artifact = build
        .build(
            "crasher",
            "fn main() -> int { var z = 0; return 1 / z; }",
            "gcc_native",
            false,
            false,
        )
        .unwrap();
    let machine = fex_vm::Machine::new(fex_vm::MachineConfig::default());
    let err = machine.load(&artifact.program).run_entry(&[]).unwrap_err();
    assert!(matches!(err, fex_vm::VmError::Trap(fex_vm::Trap::DivByZero)));
}

#[test]
fn distributed_future_work_splits_suites_across_hosts() {
    use fex_core::build::{BuildSystem, MakefileSet};
    use fex_core::distributed::{DistributedRun, HostSpec};
    let run = DistributedRun::new(
        fex_suites::micro(),
        vec![HostSpec::new("fast", 8, 4.0e9), HostSpec::new("slow", 1, 1.0e9)],
    )
    .unwrap();
    let mut build = BuildSystem::new(MakefileSet::standard());
    let config = ExperimentConfig::new("micro").types(vec!["gcc_native"]).input(InputSize::Test);
    let df = run.execute(&mut build, &config).unwrap();
    assert_eq!(df.distinct("host").unwrap(), vec!["fast", "slow"]);
    // Identical benchmarks would run ~4x slower on the 1 GHz host; the
    // partition gives each host different benchmarks, so just check both
    // hosts produced data with positive times.
    for row in df.iter() {
        assert!(row[6].as_num().unwrap() > 0.0);
    }
}

#[test]
fn edd_gate_fails_when_comparing_native_against_asan() {
    // Simulates the CI story: baseline = native, "new commit" = asan
    // build (a deliberate big regression) — the gate must fire.
    let mut fex = fex_ready();
    let native = ExperimentConfig::new("micro")
        .types(vec!["gcc_native"])
        .benchmark("arrayread")
        .input(InputSize::Test);
    fex.run(&native).unwrap();
    fex.save_baseline("micro").unwrap();
    // Rename the asan run's type column to match the baseline by running
    // the same config; instead compare via edd::check directly.
    let base = fex.result("micro").unwrap().clone();
    let asan_cfg = ExperimentConfig::new("micro")
        .types(vec!["gcc_asan"])
        .benchmark("arrayread")
        .input(InputSize::Test);
    let current = fex.run(&asan_cfg).unwrap().clone();
    // Compare on benchmark only (type differs by construction).
    let report = fex_core::edd::check(
        &base,
        &current,
        &["benchmark"],
        &[fex_core::edd::Gate::new("time", 1.10)],
    )
    .unwrap();
    assert!(!report.passed(), "asan must violate a 10% gate: {}", report.summary());
}

#[test]
fn environment_digest_is_reproducible_across_instances() {
    let a = fex_ready();
    let b = fex_ready();
    assert_eq!(
        a.container().environment_digest(),
        b.container().environment_digest(),
        "identical setup must produce identical environment digests"
    );
}

#[test]
fn injected_persistent_trap_quarantines_one_benchmark_end_to_end() {
    use fex_core::config::FaultInjection;
    use fex_core::edd::FlakinessGate;
    use fex_vm::{FaultKind, FaultPlan};

    // Baseline: the clean phoenix run at test size.
    let mut clean = fex_ready();
    let config = ExperimentConfig::new("phoenix")
        .types(vec!["gcc_native", "clang_native"])
        .input(InputSize::Test);
    let clean_frame = clean.run(&config).unwrap().clone();
    assert_eq!(clean_frame.len(), 14); // 7 programs × 2 types

    // Same experiment with `kmeans` permanently broken by injection.
    let mut faulty = fex_ready();
    let config = config
        .fault(FaultInjection::for_benchmark("kmeans", FaultPlan::persistent(FaultKind::Trap)));
    let frame = faulty.run(&config).unwrap().clone();

    // The experiment completed with a partial frame: everything except
    // the quarantined benchmark, across both build types.
    assert_eq!(frame.len(), 12);
    let benches = frame.distinct("benchmark").unwrap();
    assert_eq!(benches.len(), 6);
    assert!(!benches.contains(&"kmeans".to_string()));
    assert_eq!(frame.distinct("type").unwrap().len(), 2);

    // The failure report names the quarantined benchmark, and its CSV is
    // persisted in the container next to the results.
    let report = faulty.failure_report("phoenix").unwrap();
    assert_eq!(report.quarantined_benchmarks(), vec!["kmeans"]);
    let rec = &report.records[0];
    assert!(rec.error.contains("injected fault"), "{}", rec.error);
    assert_eq!(rec.attempts, 3, "default policy: 1 attempt + 2 retries");
    let fcsv = faulty.failure_csv("phoenix").unwrap();
    assert!(fcsv.contains("kmeans") && fcsv.contains("quarantined"));

    // Flakiness gating: the default CI gate rejects the run.
    assert!(!faulty.edd_flakiness_check("phoenix", &FlakinessGate::default()).unwrap().passed());

    // The surviving benchmarks' rows are identical to the clean run's —
    // injection perturbs nothing outside its target.
    for bench in &benches {
        let a = clean_frame.filter_eq("benchmark", bench).unwrap().to_csv();
        let b = frame.filter_eq("benchmark", bench).unwrap().to_csv();
        assert_eq!(a, b, "rows for `{bench}` must be unperturbed");
    }

    // And with injection disabled the output is byte-identical to the
    // clean run.
    let mut disabled = fex_ready();
    let config_off = ExperimentConfig::new("phoenix")
        .types(vec!["gcc_native", "clang_native"])
        .input(InputSize::Test)
        .fault(FaultInjection::everywhere(FaultPlan::none()));
    disabled.run(&config_off).unwrap();
    assert_eq!(
        disabled.result_csv("phoenix").unwrap(),
        clean.result_csv("phoenix").unwrap(),
        "disabled injection must be byte-identical to today's output"
    );
    assert!(disabled.failure_report("phoenix").unwrap().is_clean());
}
