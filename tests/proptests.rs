//! Property-based tests on the core invariants: compiler correctness
//! against a reference evaluator, environment layering, the cache model,
//! the data frame and the heap allocator.

use proptest::prelude::*;

use fex_cc::{compile, BuildOptions};
use fex_core::collect::{stats, DataFrame};
use fex_core::env::EnvSpec;
use fex_vm::{Cache, CacheConfig, Machine, MachineConfig};

// ---------------------------------------------------------------------
// Compiler vs reference evaluator
// ---------------------------------------------------------------------

/// A tiny random expression tree over one integer variable.
#[derive(Debug, Clone)]
enum Expr {
    Var,
    Const(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, x: i64) -> i64 {
        match self {
            Expr::Var => x,
            Expr::Const(c) => *c,
            Expr::Add(a, b) => a.eval(x).wrapping_add(b.eval(x)),
            Expr::Sub(a, b) => a.eval(x).wrapping_sub(b.eval(x)),
            Expr::Mul(a, b) => a.eval(x).wrapping_mul(b.eval(x)),
            Expr::And(a, b) => a.eval(x) & b.eval(x),
            Expr::Xor(a, b) => a.eval(x) ^ b.eval(x),
        }
    }

    fn to_source(&self) -> String {
        match self {
            Expr::Var => "x".into(),
            Expr::Const(c) => {
                if *c < 0 {
                    format!("(0 - {})", -c)
                } else {
                    format!("{c}")
                }
            }
            Expr::Add(a, b) => format!("({} + {})", a.to_source(), b.to_source()),
            Expr::Sub(a, b) => format!("({} - {})", a.to_source(), b.to_source()),
            Expr::Mul(a, b) => format!("({} * {})", a.to_source(), b.to_source()),
            Expr::And(a, b) => format!("({} & {})", a.to_source(), b.to_source()),
            Expr::Xor(a, b) => format!("({} ^ {})", a.to_source(), b.to_source()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::Var), (-1000i64..1000).prop_map(Expr::Const)];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both backend profiles, at every optimisation level, must compute
    /// exactly what a reference evaluator computes.
    #[test]
    fn compiled_expressions_match_reference(expr in arb_expr(), x in -10_000i64..10_000) {
        let src = format!("fn main(x) -> int {{ return {}; }}", expr.to_source());
        let expected = expr.eval(x);
        for opts in [
            BuildOptions::gcc(),
            BuildOptions::clang(),
            BuildOptions::gcc().with_opt_level(0),
            BuildOptions::gcc().with_asan(),
        ] {
            let p = compile(&src, &opts).expect("generated program compiles");
            let r = Machine::new(MachineConfig::default()).run(&p, &[x]).expect("runs");
            prop_assert_eq!(r.exit, expected, "mismatch under {}", opts.build_info());
        }
    }

    /// Optimised and unoptimised builds agree on loop-and-array programs.
    #[test]
    fn loops_agree_across_opt_levels(n in 1i64..48, stride in 1i64..7, bias in 0i64..100) {
        let src = format!(
            "global a[64];\n\
             fn main() -> int {{\n\
               var i = 0;\n\
               while (i < {n}) {{ a[i] = i * {stride} + {bias}; i += 1; }}\n\
               var s = 0;\n\
               for (j = 0; j < {n}; j += 1) {{ s += a[j]; }}\n\
               return s;\n\
             }}"
        );
        let mut results = Vec::new();
        for opts in [BuildOptions::gcc(), BuildOptions::gcc().with_opt_level(0), BuildOptions::clang()] {
            let p = compile(&src, &opts).unwrap();
            results.push(Machine::new(MachineConfig::default()).run(&p, &[]).unwrap().exit);
        }
        prop_assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
        // And the reference: sum of i*stride+bias for i in 0..n.
        let expected: i64 = (0..n).map(|i| i * stride + bias).sum();
        prop_assert_eq!(results[0], expected);
    }

    // -----------------------------------------------------------------
    // Environment layering
    // -----------------------------------------------------------------

    /// Forced values always win over default/updated; debug wins over all
    /// in debug mode and is absent otherwise.
    #[test]
    fn env_layer_priority_holds(
        key in "[A-Z]{1,8}",
        default in "[a-z]{0,6}",
        updated in "[a-z]{0,6}",
        forced in "[a-z]{1,6}",
        debug in "[a-z]{1,6}",
    ) {
        let spec = EnvSpec {
            default: vec![(key.clone(), default.clone())],
            updated: vec![(key.clone(), updated.clone())],
            forced: vec![(key.clone(), forced.clone())],
            debug: vec![(key.clone(), debug.clone())],
        };
        prop_assert_eq!(&spec.resolve(false)[&key], &forced);
        prop_assert_eq!(&spec.resolve(true)[&key], &debug);
        // Without forced/debug, updated appends to default.
        let spec2 = EnvSpec {
            default: vec![(key.clone(), default.clone())],
            updated: vec![(key.clone(), updated.clone())],
            ..EnvSpec::default()
        };
        let resolved = spec2.resolve(false)[&key].clone();
        prop_assert_eq!(resolved, format!("{default} {updated}"));
    }

    // -----------------------------------------------------------------
    // Cache model
    // -----------------------------------------------------------------

    /// Hits never exceed accesses, and a repeated access pattern that fits
    /// in the cache eventually hits every time.
    #[test]
    fn cache_invariants(addrs in prop::collection::vec(0u64..4096, 1..200)) {
        let mut c = Cache::new(CacheConfig { size: 8192, ways: 4, line: 64, latency: 1 });
        for a in &addrs {
            c.access(*a);
        }
        let s = c.stats();
        prop_assert!(s.hits <= s.accesses);
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        // Working set (≤ 4 KiB) fits in the 8 KiB cache: a second pass
        // over the same addresses must hit on every access.
        let before = c.stats().hits;
        for a in &addrs {
            prop_assert!(c.access(*a), "second pass must hit");
        }
        prop_assert_eq!(c.stats().hits, before + addrs.len() as u64);
    }

    // -----------------------------------------------------------------
    // DataFrame
    // -----------------------------------------------------------------

    /// CSV serialisation round-trips arbitrary string/number tables.
    #[test]
    fn dataframe_csv_roundtrip(
        cells in prop::collection::vec(
            prop::collection::vec(
                prop_oneof![
                    "[ -~]{0,12}".prop_map(CellSeed::Str),
                    (-1_000_000i64..1_000_000).prop_map(CellSeed::Int),
                ],
                3,
            ),
            0..20,
        )
    ) {
        let mut df = DataFrame::new(vec!["a", "b", "c"]);
        for row in &cells {
            df.push(row.iter().map(|c| c.to_value()).collect());
        }
        let parsed = DataFrame::from_csv(&df.to_csv()).unwrap();
        prop_assert_eq!(parsed.len(), df.len());
        // Numbers survive exactly; strings survive verbatim unless they
        // happen to parse as numbers, in which case CSV erases the
        // distinction (as in pandas) and only numeric equality holds.
        for (orig, new) in df.iter().zip(parsed.iter()) {
            for (o, n) in orig.iter().zip(new.iter()) {
                let (os, ns) = (o.to_cell_string(), n.to_cell_string());
                if os != ns {
                    let (of, nf) = (os.parse::<f64>(), ns.parse::<f64>());
                    prop_assert!(
                        matches!((of, nf), (Ok(a), Ok(b)) if a == b),
                        "cells diverged: {os:?} vs {ns:?}"
                    );
                }
            }
        }
    }

    /// The mean of a group aggregation lies within [min, max].
    #[test]
    fn group_mean_is_bounded(values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let mut df = DataFrame::new(vec!["k", "v"]);
        for v in &values {
            df.push(vec!["g".into(), (*v).into()]);
        }
        let agg = df.group_agg(&["k"], "v", stats::mean).unwrap();
        let mean = agg.iter().next().unwrap()[1].as_num().unwrap();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }
}

// ---------------------------------------------------------------------
// Statement-level differential testing: random programs with loops,
// branches and array writes, compared against a reference interpreter
// under every backend profile and optimisation level. This is the class
// of test that catches unsound optimisation passes (an early LICM bug
// hoisted conditional definitions; this generator would have found it).
// ---------------------------------------------------------------------

const NVARS: usize = 4;
const ARR: usize = 8;

#[derive(Debug, Clone)]
enum SExpr {
    Var(usize),
    Arr(usize),
    Const(i64),
    Add(Box<SExpr>, Box<SExpr>),
    Sub(Box<SExpr>, Box<SExpr>),
    Mul(Box<SExpr>, Box<SExpr>),
    Xor(Box<SExpr>, Box<SExpr>),
    // Multiply by a power of two — targets the strength-reduction path.
    MulPow2(Box<SExpr>, u32),
    // Modulo by a power of two — targets the div/rem lowering (signed!).
    RemPow2(Box<SExpr>, u32),
    Lt(Box<SExpr>, Box<SExpr>),
}

impl SExpr {
    fn eval(&self, vars: &[i64; NVARS], arr: &[i64; ARR]) -> i64 {
        match self {
            SExpr::Var(i) => vars[*i],
            SExpr::Arr(i) => arr[*i],
            SExpr::Const(c) => *c,
            SExpr::Add(a, b) => a.eval(vars, arr).wrapping_add(b.eval(vars, arr)),
            SExpr::Sub(a, b) => a.eval(vars, arr).wrapping_sub(b.eval(vars, arr)),
            SExpr::Mul(a, b) => a.eval(vars, arr).wrapping_mul(b.eval(vars, arr)),
            SExpr::Xor(a, b) => a.eval(vars, arr) ^ b.eval(vars, arr),
            SExpr::MulPow2(a, k) => a.eval(vars, arr).wrapping_mul(1i64 << k),
            SExpr::RemPow2(a, k) => a.eval(vars, arr).wrapping_rem(1i64 << k),
            SExpr::Lt(a, b) => (a.eval(vars, arr) < b.eval(vars, arr)) as i64,
        }
    }

    fn to_source(&self) -> String {
        match self {
            SExpr::Var(i) => format!("v{i}"),
            SExpr::Arr(i) => format!("a[{i}]"),
            SExpr::Const(c) => {
                if *c < 0 {
                    format!("(0 - {})", -c)
                } else {
                    format!("{c}")
                }
            }
            SExpr::Add(a, b) => format!("({} + {})", a.to_source(), b.to_source()),
            SExpr::Sub(a, b) => format!("({} - {})", a.to_source(), b.to_source()),
            SExpr::Mul(a, b) => format!("({} * {})", a.to_source(), b.to_source()),
            SExpr::Xor(a, b) => format!("({} ^ {})", a.to_source(), b.to_source()),
            SExpr::MulPow2(a, k) => format!("({} * {})", a.to_source(), 1i64 << k),
            SExpr::RemPow2(a, k) => format!("({} % {})", a.to_source(), 1i64 << k),
            SExpr::Lt(a, b) => format!("({} < {})", a.to_source(), b.to_source()),
        }
    }
}

#[derive(Debug, Clone)]
enum SStmt {
    AssignVar(usize, SExpr),
    AssignArr(usize, SExpr),
    If(SExpr, Vec<SStmt>, Vec<SStmt>),
    /// `for (li = 0; li < n; li += 1) body` with a fresh loop variable the
    /// body cannot touch.
    Loop(u8, Vec<SStmt>),
}

impl SStmt {
    fn exec(&self, vars: &mut [i64; NVARS], arr: &mut [i64; ARR]) {
        match self {
            SStmt::AssignVar(i, e) => vars[*i] = e.eval(vars, arr),
            SStmt::AssignArr(i, e) => arr[*i] = e.eval(vars, arr),
            SStmt::If(c, t, f) => {
                let body = if c.eval(vars, arr) != 0 { t } else { f };
                for s in body {
                    s.exec(vars, arr);
                }
            }
            SStmt::Loop(n, body) => {
                for _ in 0..*n {
                    for s in body {
                        s.exec(vars, arr);
                    }
                }
            }
        }
    }

    fn to_source(&self, out: &mut String, depth: usize, loop_id: &mut usize) {
        let pad = "  ".repeat(depth + 1);
        match self {
            SStmt::AssignVar(i, e) => out.push_str(&format!("{pad}v{i} = {};\n", e.to_source())),
            SStmt::AssignArr(i, e) => out.push_str(&format!("{pad}a[{i}] = {};\n", e.to_source())),
            SStmt::If(c, t, f) => {
                out.push_str(&format!("{pad}if ({} != 0) {{\n", c.to_source()));
                for s in t {
                    s.to_source(out, depth + 1, loop_id);
                }
                if f.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    for s in f {
                        s.to_source(out, depth + 1, loop_id);
                    }
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            SStmt::Loop(n, body) => {
                let li = *loop_id;
                *loop_id += 1;
                out.push_str(&format!("{pad}for (li{li} = 0; li{li} < {n}; li{li} += 1) {{\n"));
                for s in body {
                    s.to_source(out, depth + 1, loop_id);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn arb_sexpr() -> impl Strategy<Value = SExpr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(SExpr::Var),
        (0..ARR).prop_map(SExpr::Arr),
        (-100i64..100).prop_map(SExpr::Const),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SExpr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SExpr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SExpr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SExpr::Xor(a.into(), b.into())),
            (inner.clone(), 1u32..6).prop_map(|(a, k)| SExpr::MulPow2(a.into(), k)),
            (inner.clone(), 1u32..6).prop_map(|(a, k)| SExpr::RemPow2(a.into(), k)),
            (inner.clone(), inner).prop_map(|(a, b)| SExpr::Lt(a.into(), b.into())),
        ]
    })
}

fn arb_sstmt() -> impl Strategy<Value = SStmt> {
    let assign = prop_oneof![
        ((0..NVARS), arb_sexpr()).prop_map(|(i, e)| SStmt::AssignVar(i, e)),
        ((0..ARR), arb_sexpr()).prop_map(|(i, e)| SStmt::AssignArr(i, e)),
    ];
    assign.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (
                arb_sexpr(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(c, t, f)| SStmt::If(c, t, f)),
            ((1u8..6), prop::collection::vec(inner, 1..3)).prop_map(|(n, b)| SStmt::Loop(n, b)),
        ]
    })
}

fn program_source(stmts: &[SStmt], x: i64) -> String {
    let mut src = String::from("global a[8];\nfn main(x) -> int {\n");
    for i in 0..NVARS {
        src.push_str(&format!(
            "  var v{i} = {};\n",
            if i == 0 { "x".to_string() } else { i.to_string() }
        ));
    }
    let mut loop_id = 0usize;
    for s in stmts {
        s.to_source(&mut src, 0, &mut loop_id);
    }
    src.push_str("  var acc = v0;\n");
    for i in 1..NVARS {
        src.push_str(&format!("  acc = acc ^ (v{i} * {});\n", 2 * i + 1));
    }
    for i in 0..ARR {
        src.push_str(&format!("  acc = acc ^ (a[{i}] * {});\n", 3 * i + 2));
    }
    src.push_str("  return acc;\n}\n");
    let _ = x;
    src
}

fn reference_result(stmts: &[SStmt], x: i64) -> i64 {
    let mut vars = [x, 1, 2, 3];
    let mut arr = [0i64; ARR];
    for s in stmts {
        s.exec(&mut vars, &mut arr);
    }
    let mut acc = vars[0];
    for (i, v) in vars.iter().enumerate().skip(1) {
        acc ^= v.wrapping_mul(2 * i as i64 + 1);
    }
    for (i, a) in arr.iter().enumerate() {
        acc ^= a.wrapping_mul(3 * i as i64 + 2);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whole random programs agree with the reference interpreter under
    /// every backend profile and optimisation level (differential
    /// testing of the optimisation pipeline).
    #[test]
    fn random_programs_match_reference(
        stmts in prop::collection::vec(arb_sstmt(), 1..6),
        x in -1000i64..1000,
    ) {
        let src = program_source(&stmts, x);
        let expected = reference_result(&stmts, x);
        for opts in [
            BuildOptions::gcc(),
            BuildOptions::clang(),
            BuildOptions::gcc().with_opt_level(0),
            BuildOptions::gcc().with_opt_level(1),
            BuildOptions::clang().with_asan(),
        ] {
            let p = compile(&src, &opts)
                .unwrap_or_else(|e| panic!("compile failed under {}: {e}\n{src}", opts.build_info()));
            let r = Machine::new(MachineConfig::default())
                .run(&p, &[x])
                .unwrap_or_else(|e| panic!("run failed under {}: {e}\n{src}", opts.build_info()));
            prop_assert_eq!(
                r.exit,
                expected,
                "mismatch under {}\n{}",
                opts.build_info(),
                src
            );
        }
    }
}

// ---------------------------------------------------------------------
// Resilience: with the fault rate at zero, the resilient experiment loop
// must be an exact no-op wrapper around the original Fig 4 loop.
// ---------------------------------------------------------------------

fn run_micro(config: &fex_core::ExperimentConfig) -> (String, bool) {
    use fex_core::build::{BuildSystem, MakefileSet};
    use fex_core::runner::{RunContext, Runner, SuiteRunner};

    let mut build = BuildSystem::new(MakefileSet::standard());
    let mut log = Vec::new();
    let mut ctx = RunContext::new(config, &mut build, &mut log);
    let mut runner = SuiteRunner::new(fex_suites::micro(), config);
    let df = runner.run(&mut ctx).unwrap();
    (df.to_csv(), ctx.failures.is_clean())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arming a fault plan with rate 0 (and any retry budget) must leave
    /// the result frame byte-identical to a plain, injection-free run,
    /// with a clean failure report.
    #[test]
    fn zero_fault_rate_reproduces_the_plain_loop(
        types_pick in 0usize..3,
        reps in 1usize..3,
        fault_seed in 0u64..1000,
        retries in 0usize..6,
    ) {
        use fex_core::config::FaultInjection;
        use fex_core::{ExperimentConfig, RunPolicy};
        use fex_suites::InputSize;
        use fex_vm::{FaultKind, FaultPlan};

        let types = match types_pick {
            0 => vec!["gcc_native"],
            1 => vec!["clang_native"],
            _ => vec!["gcc_native", "clang_native"],
        };
        let base = ExperimentConfig::new("micro")
            .types(types)
            .input(InputSize::Test)
            .repetitions(reps);
        let (plain_csv, plain_clean) = run_micro(&base);

        let armed = base
            .clone()
            .fault(FaultInjection::everywhere(FaultPlan::spurious(
                0.0,
                FaultKind::Trap,
                fault_seed,
            )))
            .resilience(RunPolicy::default().retries(retries));
        let (armed_csv, armed_clean) = run_micro(&armed);

        prop_assert!(plain_clean && armed_clean);
        prop_assert_eq!(plain_csv, armed_csv);
    }
}

// ---------------------------------------------------------------------
// Scheduler: a parallel run must be observationally identical to a
// sequential one — same results CSV, same failures CSV, byte for byte —
// because every run unit derives its seeds from its own coordinates and
// quarantine is decided at merge time in matrix order.
// ---------------------------------------------------------------------

fn run_micro_with_failures(config: &fex_core::ExperimentConfig) -> (String, String) {
    use fex_core::build::{BuildSystem, MakefileSet};
    use fex_core::runner::{RunContext, Runner, SuiteRunner};

    let mut build = BuildSystem::new(MakefileSet::standard());
    let mut log = Vec::new();
    let mut ctx = RunContext::new(config, &mut build, &mut log);
    let mut runner = SuiteRunner::new(fex_suites::micro(), config);
    let df = runner.run(&mut ctx).unwrap();
    (df.to_csv(), ctx.failures.to_csv())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `--jobs 8` produces byte-identical results and failures CSVs to
    /// `--jobs 1`, with and without fault injection, whatever the
    /// transient-fault rate, seed, retry budget and claim-chunk size.
    #[test]
    fn parallel_runs_are_byte_identical_to_sequential(
        types_pick in 0usize..3,
        reps in 1usize..3,
        inject in 0usize..2,
        rate in 0.0f64..0.8,
        fault_seed in 0u64..1000,
        retries in 0usize..4,
        experiment_seed in 0u64..1000,
        chunk in 0usize..5,
    ) {
        use fex_core::config::FaultInjection;
        use fex_core::{ExperimentConfig, RunPolicy};
        use fex_suites::InputSize;
        use fex_vm::{FaultKind, FaultPlan};

        let types = match types_pick {
            0 => vec!["gcc_native"],
            1 => vec!["clang_native"],
            _ => vec!["gcc_native", "clang_native"],
        };
        let mut base = ExperimentConfig::new("micro")
            .types(types)
            .input(InputSize::Test)
            .repetitions(reps)
            .resilience(RunPolicy::default().retries(retries));
        base.seed = experiment_seed;
        if inject == 1 {
            base = base.fault(FaultInjection::everywhere(FaultPlan::spurious(
                rate,
                FaultKind::Trap,
                fault_seed,
            )));
        }
        let (seq_csv, seq_failures) = run_micro_with_failures(&base.clone().jobs(1));
        let (par_csv, par_failures) = run_micro_with_failures(&base.jobs(8).chunk(chunk));
        prop_assert_eq!(seq_csv, par_csv);
        prop_assert_eq!(seq_failures, par_failures);
    }
}

// ---------------------------------------------------------------------
// Measurement hot path: superinstruction fusion, the MRU cache fast path
// and the decoded-artifact cache are pure speed — every observable
// artifact (results CSV, failures CSV, clean/quarantine status) must be
// byte-identical with the optimisations on and off, under fault
// injection, at any worker count.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any decode pass subset (plus the MRU and decoded-artifact caches
    /// off) vs all hot-path optimisations ON: the suite matrix must
    /// produce byte-identical results and failures CSVs, with and
    /// without fault injection, sequentially and with `--jobs 8`, at any
    /// claim-chunk size.
    #[test]
    fn hot_path_optimisations_never_change_measured_numbers(
        types_pick in 0usize..3,
        reps in 1usize..3,
        inject in 0usize..2,
        rate in 0.0f64..0.8,
        fault_seed in 0u64..1000,
        retries in 0usize..4,
        experiment_seed in 0u64..1000,
        jobs_pick in 0usize..2,
        mask_bits in 0u8..8,
        chunk in 0usize..5,
    ) {
        use fex_core::config::FaultInjection;
        use fex_core::{ExperimentConfig, RunPolicy};
        use fex_suites::InputSize;
        use fex_vm::{FaultKind, FaultPlan, PassMask};

        let types = match types_pick {
            0 => vec!["gcc_native"],
            1 => vec!["clang_native", "gcc_asan"],
            _ => vec!["gcc_native", "clang_native"],
        };
        let mut base = ExperimentConfig::new("micro")
            .types(types)
            .input(InputSize::Test)
            .repetitions(reps)
            .resilience(RunPolicy::default().retries(retries))
            .jobs(if jobs_pick == 0 { 1 } else { 8 });
        base.seed = experiment_seed;
        if inject == 1 {
            base = base.fault(FaultInjection::everywhere(FaultPlan::spurious(
                rate,
                FaultKind::Trap,
                fault_seed,
            )));
        }
        let (on_csv, on_failures) = run_micro_with_failures(&base.clone());
        let (off_csv, off_failures) = run_micro_with_failures(
            &base
                .passes(PassMask::from_bits(mask_bits))
                .chunk(chunk)
                .mru(false)
                .decode_cache(false),
        );
        prop_assert_eq!(on_csv, off_csv);
        prop_assert_eq!(on_failures, off_failures);
    }
}

#[derive(Debug, Clone)]
enum CellSeed {
    Str(String),
    Int(i64),
}

impl CellSeed {
    fn to_value(&self) -> fex_core::collect::Value {
        match self {
            CellSeed::Str(s) => s.as_str().into(),
            CellSeed::Int(v) => (*v).into(),
        }
    }
}
