//! Integration tests for `fex diag` against the real binary: the
//! exit-code contract (2 on error findings, 0 otherwise, 1 on unreadable
//! input), the SARIF 2.1.0 output shape, byte-determinism across runs
//! and `--jobs` values (the differential idiom of `tests/journal_diff.rs`
//! applied to the diagnostics engine), the `fex report` empty-journal
//! contract, and `fex lab list` with the repro column and `--json` mode.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use fex_core::lab::{RunArtifacts, RunStore};
use fex_core::{ExperimentConfig, JournalEvent};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fex-diag-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fex(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fex")).args(args).current_dir(dir).output().expect("spawn fex")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A minimal healthy journal: start, both phase ends, end.
fn healthy_journal() -> String {
    let events = [
        JournalEvent::ExperimentStart {
            name: "micro".into(),
            jobs: 1,
            seed: 7,
            version: fex_core::journal::JOURNAL_VERSION,
        },
        JournalEvent::DecodeCache { decodes: 1, served: 2 },
        JournalEvent::PhaseEnd { phase: "run".into(), wall_ns: 5 },
        JournalEvent::PhaseEnd { phase: "collect".into(), wall_ns: 5 },
        JournalEvent::ExperimentEnd { rows: 1, failure_records: 0, wall_ns: 10 },
    ];
    events.iter().map(|e| e.to_json() + "\n").collect()
}

fn results_csv(bench: &str, times: &[f64]) -> String {
    let mut csv = String::from("suite,benchmark,type,threads,input,rep,time\n");
    for (rep, t) in times.iter().enumerate() {
        csv.push_str(&format!("micro,{bench},gcc_native,1,test,{rep},{t}\n"));
    }
    csv
}

fn save_run(store: &RunStore, config: &ExperimentConfig, results: &str) {
    let art = RunArtifacts {
        results_csv: results,
        failures_csv: "benchmark\n",
        metrics_json: None,
        journal_digest: Some("fex256:test"),
    };
    store.save(config, &art).unwrap();
}

// ---------------------------------------------------------------------
// exit-code contract
// ---------------------------------------------------------------------

#[test]
fn clean_journal_exits_zero() {
    let dir = temp_dir("clean");
    std::fs::write(dir.join("run.jsonl"), healthy_journal()).unwrap();
    let out = fex(&dir, &["diag", "run.jsonl"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("no findings"), "{}", stdout(&out));
}

#[test]
fn malformed_journal_exits_two() {
    let dir = temp_dir("malformed");
    let mut journal = healthy_journal();
    journal.push_str("this is not json\n");
    std::fs::write(dir.join("run.jsonl"), journal).unwrap();
    let out = fex(&dir, &["diag", "run.jsonl"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("journal-integrity"), "{}", stdout(&out));
    assert!(stderr(&out).contains("error-severity"), "{}", stderr(&out));
}

#[test]
fn unreadable_inputs_exit_one_naming_the_path() {
    let dir = temp_dir("unreadable");
    let out = fex(&dir, &["diag", "missing.jsonl"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("missing.jsonl"), "{}", stderr(&out));

    let out = fex(&dir, &["diag", "--lab", "no-such-lab"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("no-such-lab"), "{}", stderr(&out));

    // An explicit --config that does not exist is unreadable input too.
    std::fs::write(dir.join("run.jsonl"), healthy_journal()).unwrap();
    let out = fex(&dir, &["diag", "run.jsonl", "--config", "nope.toml"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("nope.toml"), "{}", stderr(&out));
}

#[test]
fn stored_regression_exits_two_with_sarif() {
    let dir = temp_dir("regression");
    let store = RunStore::open(dir.join("lab")).unwrap();
    let config = ExperimentConfig::new("micro").repetitions(3);
    save_run(&store, &config, &results_csv("a", &[1.0, 1.01, 0.99]));
    save_run(&store, &config, &results_csv("a", &[2.0, 2.01, 1.99]));
    let out = fex(&dir, &["diag", "--lab", "lab", "--format", "sarif"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("\"ruleId\": \"significant-regression\""), "{}", stdout(&out));
}

#[test]
fn deny_silences_a_rule_and_flips_the_exit_code() {
    let dir = temp_dir("deny");
    let mut journal = healthy_journal();
    journal.push_str("garbage\n");
    std::fs::write(dir.join("run.jsonl"), journal).unwrap();
    let out = fex(&dir, &["diag", "run.jsonl", "--deny", "journal-integrity"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let out = fex(&dir, &["diag", "run.jsonl", "--rules", "flakiness,variance-anomaly"]);
    assert!(out.status.success(), "allow-list without integrity passes");
}

// ---------------------------------------------------------------------
// SARIF shape + determinism
// ---------------------------------------------------------------------

/// Builds a context that exercises journal and store rules at once.
fn mixed_fixture(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    let mut journal = healthy_journal();
    journal.push_str("garbage line one\n");
    journal.push_str("{\"event\": \"martian\"}\n");
    std::fs::write(dir.join("run.jsonl"), journal).unwrap();
    let store = RunStore::open(dir.join("lab")).unwrap();
    let config = ExperimentConfig::new("micro").repetitions(3);
    save_run(&store, &config, &results_csv("a", &[1.0, 1.01, 0.99]));
    save_run(&store, &config, &results_csv("a", &[2.0, 2.01, 1.99]));
    dir
}

#[test]
fn sarif_has_the_2_1_0_shape() {
    let dir = mixed_fixture("sarif-shape");
    let out = fex(&dir, &["diag", "run.jsonl", "--lab", "lab", "--format", "sarif"]);
    let sarif = stdout(&out);
    for needle in [
        "\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\"",
        "\"version\": \"2.1.0\"",
        "\"runs\": [",
        "\"tool\": {",
        "\"driver\": {",
        "\"name\": \"fex diag\"",
        "\"results\": [",
        "\"ruleId\": \"journal-integrity\"",
        "\"ruleId\": \"significant-regression\"",
        "\"level\": \"error\"",
        "\"locations\": [",
        "\"artifactLocation\": { \"uri\": \"run.jsonl\" }",
        "\"startLine\": 6",
    ] {
        assert!(sarif.contains(needle), "missing `{needle}` in:\n{sarif}");
    }
}

#[test]
fn sarif_is_byte_identical_across_runs_and_jobs() {
    let dir = mixed_fixture("sarif-diff");
    let args = ["diag", "run.jsonl", "--lab", "lab", "--format", "sarif"];
    let baseline = stdout(&fex(&dir, &args));
    assert!(!baseline.is_empty());
    // Repeated invocations: no wall-clock or host fields can sneak in.
    assert_eq!(stdout(&fex(&dir, &args)), baseline, "re-run drifted");
    // Worker count is an implementation detail (the journal_diff idiom:
    // schedule must not move a byte).
    for jobs in ["1", "2", "8"] {
        let out =
            fex(&dir, &["diag", "run.jsonl", "--lab", "lab", "--format", "sarif", "--jobs", jobs]);
        assert_eq!(stdout(&out), baseline, "--jobs {jobs} drifted");
    }
}

#[test]
fn github_annotations_render() {
    let dir = mixed_fixture("github");
    let out = fex(&dir, &["diag", "run.jsonl", "--lab", "lab", "--format", "github"]);
    let gh = stdout(&out);
    assert!(gh.contains("::error file=run.jsonl,line=6,title=journal-integrity::"), "{gh}");
    assert!(gh.contains("::error file="), "{gh}");
}

#[test]
fn fex_toml_preset_is_picked_up_from_the_working_directory() {
    let dir = temp_dir("toml");
    let mut journal = healthy_journal();
    journal.push_str("garbage\n");
    std::fs::write(dir.join("run.jsonl"), journal).unwrap();
    std::fs::write(dir.join("fex.toml"), "[diag]\ndeny = [\"journal-integrity\"]\n").unwrap();
    let out = fex(&dir, &["diag", "run.jsonl"]);
    assert!(out.status.success(), "fex.toml deny silences the error: {}", stderr(&out));
    // A bad config is a config error, not a silent default.
    std::fs::write(dir.join("fex.toml"), "[diag]\nfrobnicate = 1\n").unwrap();
    let out = fex(&dir, &["diag", "run.jsonl"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("frobnicate"), "{}", stderr(&out));
}

// ---------------------------------------------------------------------
// fex report exit-code contract (satellite bugfix)
// ---------------------------------------------------------------------

#[test]
fn report_on_an_empty_journal_exits_one_naming_the_path() {
    let dir = temp_dir("report-empty");
    std::fs::write(dir.join("empty.jsonl"), "").unwrap();
    let out = fex(&dir, &["report", "empty.jsonl"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("empty.jsonl"), "{}", stderr(&out));
    assert!(stdout(&out).is_empty(), "no report rendered: {}", stdout(&out));
}

#[test]
fn report_on_an_all_malformed_journal_exits_one() {
    let dir = temp_dir("report-malformed");
    std::fs::write(dir.join("bad.jsonl"), "nope\nstill nope\n").unwrap();
    let out = fex(&dir, &["report", "bad.jsonl"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("bad.jsonl"), "{}", stderr(&out));
    assert!(stderr(&out).contains("2 malformed"), "{}", stderr(&out));
}

#[test]
fn report_on_a_healthy_journal_still_renders() {
    let dir = temp_dir("report-ok");
    std::fs::write(dir.join("run.jsonl"), healthy_journal()).unwrap();
    let out = fex(&dir, &["report", "run.jsonl"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("experiment `micro`"), "{}", stdout(&out));
}

// ---------------------------------------------------------------------
// fex lab list: repro column + --json (satellite)
// ---------------------------------------------------------------------

#[test]
fn lab_list_shows_the_repro_column() {
    let dir = temp_dir("lab-list");
    let store = RunStore::open(dir.join("lab")).unwrap();
    let config = ExperimentConfig::new("micro").repetitions(3);
    save_run(&store, &config, &results_csv("a", &[1.0, 1.01, 0.99]));
    let out = fex(&dir, &["lab", "list", "--lab", "lab"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let table = stdout(&out);
    assert!(table.contains("repro"), "{table}");
    // journal 20 + reps 10 readiness, full 50 outcome.
    assert!(table.contains("80/100"), "{table}");
}

#[test]
fn lab_list_json_emits_one_flat_object_per_line() {
    let dir = temp_dir("lab-json");
    let store = RunStore::open(dir.join("lab")).unwrap();
    let config = ExperimentConfig::new("micro").repetitions(3);
    save_run(&store, &config, &results_csv("a", &[1.0, 1.01, 0.99]));
    save_run(&store, &config, &results_csv("a", &[1.02, 1.0, 0.98]));
    let out = fex(&dir, &["lab", "list", "--json", "--lab", "lab"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let listing = stdout(&out);
    let lines: Vec<&str> = listing.lines().collect();
    assert_eq!(lines.len(), 2, "{lines:?}");
    for line in &lines {
        assert!(line.starts_with("{\"run_id\": \"fex256:"), "{line}");
        for field in [
            "\"seq\": ",
            "\"experiment\": ",
            "\"key\": ",
            "\"rows\": ",
            "\"failures\": ",
            "\"repro\": 80",
            "\"readiness\": 30",
            "\"outcome\": 50",
        ] {
            assert!(line.contains(field), "missing `{field}` in {line}");
        }
    }
}
