//! Differential tests for the run journal: observability must be free.
//!
//! Two invariants are locked down here, both by construction in
//! `fex_core::journal` and the runner loops:
//!
//! 1. **Byte-invisibility** — turning the journal off (`--no-journal`)
//!    changes nothing observable: results CSV and failures CSV are
//!    byte-identical with journaling on and off, sequentially and with
//!    `--jobs 8`, with and without fault injection.
//! 2. **Schedule-independence** — the journal itself does not depend on
//!    the worker count: jobs 1 and jobs 8 emit the same number of events
//!    of each kind, and after normalizing the schedule-dependent fields
//!    (worker id, wall-clock durations, the advertised job count) the
//!    two event streams are identical up to ordering.

use std::collections::BTreeMap;

use proptest::prelude::*;

use fex_core::config::FaultInjection;
use fex_core::{ExperimentConfig, JournalEvent, RunPolicy};
use fex_suites::InputSize;
use fex_vm::{FaultKind, FaultPlan};

/// Runs the micro suite through the real build system and runner, and
/// returns the observable artifacts plus the captured journal.
fn run_micro(config: &ExperimentConfig) -> (String, String, Vec<JournalEvent>) {
    use fex_core::build::{BuildSystem, MakefileSet};
    use fex_core::runner::{RunContext, Runner, SuiteRunner};

    let mut build = BuildSystem::new(MakefileSet::standard());
    let mut log = Vec::new();
    let mut ctx = RunContext::new(config, &mut build, &mut log);
    let mut runner = SuiteRunner::new(fex_suites::micro(), config);
    let df = runner.run(&mut ctx).unwrap();
    (df.to_csv(), ctx.failures.to_csv(), ctx.journal.events().to_vec())
}

/// A small matrix with both a persistently-faulting benchmark (retries,
/// quarantine, failure records) and healthy ones.
fn faulty_config() -> ExperimentConfig {
    ExperimentConfig::new("micro")
        .types(vec!["gcc_native", "clang_native"])
        .input(InputSize::Test)
        .repetitions(2)
        .fault(FaultInjection::for_benchmark("ptrchase", FaultPlan::persistent(FaultKind::Trap)))
}

fn event_kind_counts(events: &[JournalEvent]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for e in events {
        *counts.entry(e.kind()).or_insert(0) += 1;
    }
    counts
}

/// The schedule-independent fingerprint of a journal: every event with
/// worker id, durations and job count zeroed, serialized and sorted.
fn normalized_stream(events: &[JournalEvent]) -> Vec<String> {
    let mut stream: Vec<String> = events
        .iter()
        .map(|e| {
            let mut e = e.clone();
            e.normalize();
            e.to_json()
        })
        .collect();
    stream.sort();
    stream
}

#[test]
fn journal_off_leaves_results_and_failures_byte_identical() {
    for jobs in [1, 8] {
        for faulty in [false, true] {
            let mut base = faulty_config();
            if !faulty {
                base.fault = None;
            }
            let on = base.clone().jobs(jobs).journal(true);
            let off = base.jobs(jobs).journal(false);
            let (on_csv, on_failures, on_events) = run_micro(&on);
            let (off_csv, off_failures, off_events) = run_micro(&off);
            assert_eq!(on_csv, off_csv, "results drifted (jobs={jobs}, faulty={faulty})");
            assert_eq!(
                on_failures, off_failures,
                "failures drifted (jobs={jobs}, faulty={faulty})"
            );
            assert!(!on_events.is_empty(), "journaling on must record events");
            assert!(off_events.is_empty(), "--no-journal must record nothing");
        }
    }
}

#[test]
fn journal_event_counts_are_invariant_across_worker_counts() {
    let base = faulty_config();
    let (seq_csv, seq_failures, seq_events) = run_micro(&base.clone().jobs(1));
    let (par_csv, par_failures, par_events) = run_micro(&base.jobs(8));

    assert_eq!(seq_csv, par_csv);
    assert_eq!(seq_failures, par_failures);
    assert_eq!(
        event_kind_counts(&seq_events),
        event_kind_counts(&par_events),
        "per-kind event counts must not depend on --jobs"
    );
}

#[test]
fn normalized_journal_streams_are_identical_across_worker_counts() {
    let base = faulty_config();
    let (_, _, seq_events) = run_micro(&base.clone().jobs(1));
    for chunk in [0, 1, 3] {
        let (_, _, par_events) = run_micro(&base.clone().jobs(8).chunk(chunk));
        assert_eq!(
            normalized_stream(&seq_events),
            normalized_stream(&par_events),
            "after zeroing worker/wall-time/jobs, the streams must match event for event \
             (chunk={chunk})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full differential property: for random matrices, transient
    /// fault rates, retry budgets and seeds, journaling on vs off and
    /// jobs 1 vs 8 all produce byte-identical results and failures CSVs,
    /// and the journal's per-kind event counts are jobs-invariant.
    #[test]
    fn journaling_is_byte_invisible_and_schedule_independent(
        types_pick in 0usize..3,
        reps in 1usize..3,
        inject in 0usize..2,
        rate in 0.0f64..0.8,
        fault_seed in 0u64..1000,
        retries in 0usize..4,
        experiment_seed in 0u64..1000,
        chunk in 0usize..5,
    ) {
        let types = match types_pick {
            0 => vec!["gcc_native"],
            1 => vec!["clang_native"],
            _ => vec!["gcc_native", "clang_native"],
        };
        let mut base = ExperimentConfig::new("micro")
            .types(types)
            .input(InputSize::Test)
            .repetitions(reps)
            .resilience(RunPolicy::default().retries(retries));
        base.seed = experiment_seed;
        if inject == 1 {
            base = base.fault(FaultInjection::everywhere(FaultPlan::spurious(
                rate,
                FaultKind::Trap,
                fault_seed,
            )));
        }

        let (seq_csv, seq_failures, seq_events) = run_micro(&base.clone().jobs(1));
        let (par_csv, par_failures, par_events) = run_micro(&base.clone().jobs(8).chunk(chunk));
        let (off_csv, off_failures, off_events) = run_micro(&base.jobs(1).journal(false));

        prop_assert_eq!(&seq_csv, &par_csv);
        prop_assert_eq!(&seq_failures, &par_failures);
        prop_assert_eq!(&seq_csv, &off_csv);
        prop_assert_eq!(&seq_failures, &off_failures);
        prop_assert!(off_events.is_empty());
        prop_assert_eq!(event_kind_counts(&seq_events), event_kind_counts(&par_events));
        prop_assert_eq!(normalized_stream(&seq_events), normalized_stream(&par_events));
    }
}
