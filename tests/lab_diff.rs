//! Integration tests for the lab subsystem: the result store, the
//! adaptive repetition controller's scheduler-independence, and the
//! `fex compare` regression gate (library and binary).
//!
//! The core invariant locked down here: the adaptive controller decides
//! rep counts from each cell's successful-sample *sequence*, and samples
//! are pure functions of unit coordinates — so `--jobs 1` and `--jobs 8`
//! must aggregate **byte-identical** results CSVs, with and without
//! fault injection. The parallel scheduler may execute speculative extra
//! reps; the merge must drop them.

use std::process::Command;

use proptest::prelude::*;

use fex_core::config::FaultInjection;
use fex_core::lab::{Comparison, RunArtifacts, RunStore, Verdict};
use fex_core::{ExperimentConfig, Fex};
use fex_suites::InputSize;
use fex_vm::{FaultKind, FaultPlan};

/// Runs the micro suite through the real build system and runner.
fn run_micro(config: &ExperimentConfig) -> (String, String) {
    use fex_core::build::{BuildSystem, MakefileSet};
    use fex_core::runner::{RunContext, Runner, SuiteRunner};

    let mut build = BuildSystem::new(MakefileSet::standard());
    let mut log = Vec::new();
    let mut ctx = RunContext::new(config, &mut build, &mut log);
    let mut runner = SuiteRunner::new(fex_suites::micro(), config);
    let df = runner.run(&mut ctx).unwrap();
    (df.to_csv(), ctx.failures.to_csv())
}

fn adaptive_config(faulty: bool, seed: u64, precision: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new("micro")
        .types(vec!["gcc_native", "clang_native"])
        .input(InputSize::Test)
        .seed(seed)
        .adaptive_repetitions(2, 6, precision);
    if faulty {
        cfg = cfg.fault(FaultInjection::for_benchmark(
            "ptrchase",
            FaultPlan::persistent(FaultKind::Trap),
        ));
    }
    cfg
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fex-lab-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Adaptive repetition counts — and therefore the aggregated CSVs —
    /// do not depend on the worker count, clean or faulty.
    #[test]
    fn adaptive_reps_are_scheduler_independent(
        jobs in 2usize..9,
        seed in 0u64..1000,
        faulty in 0usize..2,
        precision_pick in 0usize..3,
    ) {
        let precision = [0.02, 0.10, 0.50][precision_pick];
        let base = adaptive_config(faulty == 1, seed, precision);
        let (seq_csv, seq_fail) = run_micro(&base.clone().jobs(1));
        let (par_csv, par_fail) = run_micro(&base.clone().jobs(jobs));
        prop_assert_eq!(seq_csv, par_csv);
        prop_assert_eq!(seq_fail, par_fail);
    }
}

#[test]
fn store_and_compare_two_runs_end_to_end() {
    let dir = temp_dir("e2e");
    let mut fex = Fex::new();
    fex.install("gcc-6.1").unwrap();
    fex.install("clang-3.8").unwrap();
    let cfg = ExperimentConfig::new("micro")
        .types(vec!["gcc_native"])
        .input(InputSize::Test)
        .repetitions(3)
        .lab(dir.to_string_lossy());
    fex.run(&cfg).unwrap();
    fex.run(&cfg).unwrap();

    let store = RunStore::open(&dir).unwrap();
    let baseline = store.resolve("prev").unwrap();
    let candidate = store.resolve("latest").unwrap();
    let base =
        fex_core::collect::DataFrame::from_csv(&store.results_csv(&baseline).unwrap()).unwrap();
    let cand =
        fex_core::collect::DataFrame::from_csv(&store.results_csv(&candidate).unwrap()).unwrap();
    let cmp = Comparison::compare(&base, &cand, "time", "prev", "latest").unwrap();
    assert!(!cmp.has_regression());
    assert_eq!(cmp.count(Verdict::Unchanged), cmp.cells.len(), "{}", cmp.to_table());
    // Deterministic rerun: every cell's means agree exactly.
    assert!(cmp.cells.iter().all(|c| c.baseline.mean == c.candidate.mean));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_save_is_idempotent_on_content() {
    let dir = temp_dir("content");
    let store = RunStore::open(&dir).unwrap();
    let cfg = ExperimentConfig::new("micro").input(InputSize::Test);
    let art = RunArtifacts {
        results_csv:
            "suite,benchmark,type,threads,input,rep,time\nmicro,a,gcc_native,1,test,0,1.5\n",
        failures_csv: "benchmark,type,threads,rep,error,attempts,outcome\n",
        metrics_json: None,
        journal_digest: None,
    };
    let a = store.save(&cfg, &art).unwrap();
    let b = store.save(&cfg, &art).unwrap();
    assert_eq!(a.run_id, b.run_id);
    assert_eq!(b.seq, a.seq + 1);
    assert_eq!(a.rows, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

// --- binary error paths and exit codes ---

fn fex_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fex"))
}

#[test]
fn report_with_missing_journal_exits_nonzero_with_message() {
    let out = fex_bin().args(["report", "/no/such/journal.jsonl"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read journal"), "{stderr}");
}

#[test]
fn lab_and_compare_on_missing_stores_exit_nonzero_with_message() {
    let dir = temp_dir("missing");
    let lab = dir.to_string_lossy().to_string();

    let out = fex_bin().args(["lab", "show", "latest", "--lab", &lab]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("empty"), "empty-store message");

    let out = fex_bin().args(["compare", "latest", "prev", "--lab", &lab]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));

    // An unreadable CSV path is reported, not panicked.
    let out = fex_bin()
        .args(["compare", "latest", "/no/such/baseline.csv", "--lab", &lab])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compare_exit_codes_gate_on_regression() {
    let dir = temp_dir("gate");
    let lab = dir.join("store").to_string_lossy().to_string();
    let header = "suite,benchmark,type,threads,input,rep,time\n";
    let row = |rep: usize, t: f64| format!("micro,fft,gcc_native,1,test,{rep},{t}\n");
    let base_path = dir.join("base.csv");
    let fast_path = dir.join("fast.csv");
    let slow_path = dir.join("slow.csv");
    std::fs::write(&base_path, format!("{header}{}{}{}", row(0, 1.00), row(1, 1.01), row(2, 0.99)))
        .unwrap();
    std::fs::write(&fast_path, format!("{header}{}{}{}", row(0, 1.00), row(1, 1.01), row(2, 0.99)))
        .unwrap();
    std::fs::write(&slow_path, format!("{header}{}{}{}", row(0, 2.00), row(1, 2.01), row(2, 1.99)))
        .unwrap();
    let svg = dir.join("cmp.svg").to_string_lossy().to_string();

    // Unchanged → exit 0, verdict table on stdout.
    let out = fex_bin()
        .args(["compare", base_path.to_str().unwrap(), fast_path.to_str().unwrap()])
        .args(["--lab", &lab, "--svg", &svg])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("unchanged"), "{stdout}");

    // Significant slowdown → exit 2.
    let out = fex_bin()
        .args(["compare", base_path.to_str().unwrap(), slow_path.to_str().unwrap()])
        .args(["--lab", &lab, "--svg", &svg])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("significant regression"));
    assert!(std::fs::read_to_string(&svg).unwrap().starts_with("<svg"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lab_cli_lists_shows_and_gcs_stored_runs() {
    let dir = temp_dir("cli");
    let lab = dir.to_string_lossy().to_string();
    for _ in 0..2 {
        let out = fex_bin()
            .args(["run", "-n", "micro", "-b", "arrayread", "-i", "test", "-r", "2"])
            .args(["--lab", &lab])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let out = fex_bin().args(["lab", "list", "--lab", &lab]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stdout.matches("fex256:").count(), 2, "{stdout}");

    let out = fex_bin().args(["lab", "show", "latest", "--lab", &lab]).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("experiment: micro"));

    // Two identical runs compare as unchanged through the store.
    let out = fex_bin().args(["compare", "prev", "latest", "--lab", &lab]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    let out = fex_bin().args(["lab", "gc", "--keep", "1", "--lab", &lab]).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("removed 1"));
    let _ = std::fs::remove_dir_all(&dir);
}
