//! Differential tests for the artifact graph: incremental evaluation
//! must be invisible.
//!
//! Invariants locked down here:
//!
//! 1. **Warm == cold** — re-running an experiment against a populated
//!    graph serves every clean unit from the node cache, and the
//!    observable artifacts — results CSV, failures CSV, the normalized
//!    journal stream and the metrics roll-up computed from it — are
//!    byte-identical to the cold run, across worker counts, pass
//!    subsets and fault injection.
//! 2. **Precise invalidation** — changing one derivation input (a
//!    cost-model knob, the pass subset) dirties exactly the dependent
//!    node layers and nothing upstream.

use std::path::Path;

use proptest::prelude::*;

use fex_core::build::{BuildSystem, MakefileSet};
use fex_core::config::FaultInjection;
use fex_core::runner::{RunContext, Runner, SuiteRunner};
use fex_core::{ArtifactGraph, ExperimentConfig, JournalEvent, Metrics, NodeKind};
use fex_suites::InputSize;
use fex_vm::{CostModel, FaultKind, FaultPlan, PassMask};

/// Runs the micro suite with the artifact graph attached at `lab`, and
/// returns the observable artifacts plus the graph's session hit/miss
/// counters.
fn run_micro_graphed(
    config: &ExperimentConfig,
    lab: &Path,
) -> (String, String, Vec<JournalEvent>, (u64, u64)) {
    let mut build = BuildSystem::new(MakefileSet::standard());
    let mut log = Vec::new();
    let mut ctx = RunContext::new(config, &mut build, &mut log);
    ctx.graph = Some(ArtifactGraph::open(lab).unwrap());
    let mut runner = SuiteRunner::new(fex_suites::micro(), config);
    let df = runner.run(&mut ctx).unwrap();
    let graph = ctx.graph.take().unwrap();
    let session = (graph.hits(), graph.misses());
    (df.to_csv(), ctx.failures.to_csv(), ctx.journal.events().to_vec(), session)
}

/// The normalized journal stream, in emission order: graph hits rewrite
/// to misses, schedule-dependent fields zero out. Cold and warm runs of
/// the same experiment must produce byte-identical streams.
fn normalized_stream(events: &[JournalEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            let mut e = e.clone();
            e.normalize();
            e.to_json()
        })
        .collect()
}

/// The metrics roll-up over the normalized stream (stored metrics carry
/// wall clocks and live cache state; the normalized roll-up is the
/// schedule- and cache-independent view golden tests compare).
fn normalized_metrics(events: &[JournalEvent]) -> String {
    let normalized: Vec<JournalEvent> = events
        .iter()
        .map(|e| {
            let mut e = e.clone();
            e.normalize();
            e
        })
        .collect();
    Metrics::from_journal(&normalized).to_json()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fex-graph-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Warm re-runs are byte-identical to cold across the scheduling
    /// and configuration axes, and — without faults armed — serve every
    /// run unit from the graph.
    #[test]
    fn warm_rerun_is_byte_identical_to_cold(
        jobs_pick in 0usize..2,
        passes_pick in 0usize..2,
        faulty_pick in 0usize..2,
        seed in 0u64..1000,
    ) {
        let jobs = [1usize, 8][jobs_pick];
        let passes = if passes_pick == 0 { PassMask::all() } else { PassMask::none() };
        let faulty = faulty_pick == 1;
        let mut config = ExperimentConfig::new("micro")
            .types(vec!["gcc_native", "clang_native"])
            .input(InputSize::Test)
            .repetitions(2)
            .seed(seed)
            .jobs(jobs)
            .passes(passes);
        if faulty {
            config = config.fault(FaultInjection::for_benchmark(
                "ptrchase",
                FaultPlan::persistent(FaultKind::Trap),
            ));
        }
        let lab = temp_dir(&format!("warm-{jobs}-{faulty}-{seed}"));
        let (cold_csv, cold_fail, cold_events, (cold_hits, _)) =
            run_micro_graphed(&config, &lab);
        let (warm_csv, warm_fail, warm_events, (warm_hits, warm_misses)) =
            run_micro_graphed(&config, &lab);

        prop_assert_eq!(cold_hits, 0, "a fresh graph cannot hit");
        prop_assert_eq!(&warm_csv, &cold_csv, "warm results CSV must be byte-identical");
        prop_assert_eq!(&warm_fail, &cold_fail, "warm failures CSV must be byte-identical");
        prop_assert_eq!(
            normalized_stream(&warm_events),
            normalized_stream(&cold_events),
            "normalized journal streams must be byte-identical"
        );
        prop_assert_eq!(
            normalized_metrics(&warm_events),
            normalized_metrics(&cold_events),
            "normalized metrics roll-ups must be byte-identical"
        );
        if !faulty {
            prop_assert_eq!(warm_misses, 0, "every clean unit must be served on warm re-run");
            prop_assert!(warm_hits > 0);
        }
        let _ = std::fs::remove_dir_all(&lab);
    }
}

/// Fault-armed benchmarks bypass the graph entirely: their retries and
/// failure records replay on every run, while healthy benchmarks are
/// still served.
#[test]
fn fault_armed_benchmarks_bypass_the_graph() {
    let config = ExperimentConfig::new("micro")
        .types(vec!["gcc_native"])
        .input(InputSize::Test)
        .repetitions(2)
        .fault(FaultInjection::for_benchmark("ptrchase", FaultPlan::persistent(FaultKind::Trap)));
    let lab = temp_dir("fault-bypass");
    let (_, cold_fail, _, _) = run_micro_graphed(&config, &lab);
    let (_, warm_fail, warm_events, (hits, misses)) = run_micro_graphed(&config, &lab);
    assert!(!cold_fail.lines().skip(1).collect::<Vec<_>>().is_empty(), "fault plan must fire");
    assert_eq!(warm_fail, cold_fail, "failure records must replay identically warm");
    assert_eq!(misses, 0, "fault-armed units never consult the graph");
    assert!(hits > 0, "healthy benchmarks are still served");
    let faulty_graph_events = warm_events.iter().any(|e| {
        matches!(
            e,
            JournalEvent::GraphHit { benchmark, .. } | JournalEvent::GraphMiss { benchmark, .. }
                if benchmark == "ptrchase"
        )
    });
    assert!(!faulty_graph_events, "fault-armed units emit no graph events");
    let _ = std::fs::remove_dir_all(&lab);
}

/// A cost-model knob change re-keys the decoded layer and everything
/// downstream of it — and nothing upstream: source and compiled nodes
/// keep their digests, so a warm re-run after a cost change rebuilds
/// only decode and run cells.
#[test]
fn cost_knob_change_dirties_exactly_the_dependent_nodes() {
    use fex_core::graph::{compiled_key, decoded_key, unit_key};

    let source = fex_cc::source_digest("fft", "int main() { return fft(); }");
    let compiled = compiled_key(source, "gcc", "6.1.0", 2, false, false);

    let base = CostModel::default();
    let mut tweaked = CostModel::default();
    tweaked.fdiv += 1;
    assert_ne!(base.fingerprint(), tweaked.fingerprint(), "knob must move the fingerprint");

    let decoded_base = decoded_key(compiled, PassMask::all().bits(), base.fingerprint());
    let decoded_tweaked = decoded_key(compiled, PassMask::all().bits(), tweaked.fingerprint());
    assert_ne!(decoded_base, decoded_tweaked, "decoded layer must be dirtied");

    let unit_base = unit_key(decoded_base, 7, 1, Some(0), "test", &[64], None);
    let unit_tweaked = unit_key(decoded_tweaked, 7, 1, Some(0), "test", &[64], None);
    assert_ne!(unit_base, unit_tweaked, "run units downstream must be dirtied");

    // Upstream layers are untouched: the same source and compiled keys
    // are derived regardless of the cost model, so a warm re-run reuses
    // their nodes as-is.
    let source_again = fex_cc::source_digest("fft", "int main() { return fft(); }");
    let compiled_again = compiled_key(source_again, "gcc", "6.1.0", 2, false, false);
    assert_eq!(source, source_again);
    assert_eq!(compiled, compiled_again);
}

/// Changing the pass subset between runs adds new decoded and run-unit
/// nodes but reuses the source and compiled layers, and re-running
/// either configuration afterwards is fully warm.
#[test]
fn pass_subset_change_dirties_decoded_and_run_layers_only() {
    let base = ExperimentConfig::new("micro").types(vec!["gcc_native"]).input(InputSize::Test);
    let lab = temp_dir("passes");
    let all = base.clone().passes(PassMask::all());
    let none = base.clone().passes(PassMask::none());

    let (_, _, _, (h1, m1)) = run_micro_graphed(&all, &lab);
    assert_eq!(h1, 0);
    let (_, _, _, (h2, m2)) = run_micro_graphed(&none, &lab);
    assert_eq!(h2, 0, "a different pass subset shares no run-unit nodes");
    assert_eq!(m1, m2, "same unit count under both subsets");

    let graph = ArtifactGraph::open(&lab).unwrap();
    let counts = graph.node_counts();
    let micro_benches = m1 as usize;
    assert_eq!(counts.get(&NodeKind::Source).copied().unwrap_or(0), micro_benches);
    assert_eq!(
        counts.get(&NodeKind::Compiled).copied().unwrap_or(0),
        micro_benches,
        "compiled nodes are shared across pass subsets"
    );
    assert_eq!(
        counts.get(&NodeKind::Decoded).copied().unwrap_or(0),
        2 * micro_benches,
        "each pass subset has its own decoded layer"
    );
    assert_eq!(counts.get(&NodeKind::RunUnit).copied().unwrap_or(0), 2 * micro_benches);

    let (_, _, _, (h3, m3)) = run_micro_graphed(&all, &lab);
    let (_, _, _, (h4, m4)) = run_micro_graphed(&none, &lab);
    assert_eq!((m3, m4), (0, 0), "both configurations stay warm");
    assert_eq!((h3, h4), (h2 + m2, h2 + m2));
    let _ = std::fs::remove_dir_all(&lab);
}

/// `--no-graph` disables lookups and stores even with the graph
/// attached, and the CSVs are byte-identical either way.
#[test]
fn no_graph_escape_hatch_is_byte_invisible() {
    let on = ExperimentConfig::new("micro").types(vec!["gcc_native"]).input(InputSize::Test);
    let off = on.clone().graph(false);
    let lab_on = temp_dir("hatch-on");
    let lab_off = temp_dir("hatch-off");
    let (csv_on, fail_on, _, _) = run_micro_graphed(&on, &lab_on);
    let (csv_off, fail_off, _, (hits, misses)) = run_micro_graphed(&off, &lab_off);
    assert_eq!(csv_on, csv_off);
    assert_eq!(fail_on, fail_off);
    assert_eq!((hits, misses), (0, 0), "--no-graph must not consult the cache");
    assert!(ArtifactGraph::open(&lab_off).unwrap().is_empty(), "--no-graph must not store");
    let _ = std::fs::remove_dir_all(&lab_on);
    let _ = std::fs::remove_dir_all(&lab_off);
}
