//! Service-level integration tests for `fex serve`: the real binary's
//! daemon lifecycle (submit → stream → result, cross-tenant cache
//! serving, malformed-submission rejection, drain-on-shutdown), plus
//! differential fault-tolerance tests for the simulated fleet mode —
//! extending the jobs-invariance idiom of `tests/lab_diff.rs` to host
//! loss: a campaign that loses hosts mid-flight and re-distributes its
//! work must produce canonical CSVs byte-identical to an undisturbed
//! run.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use fex_core::serve::{self, canonical_fleet_csv, Submission};
use fex_core::Fex;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fex-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the real `fex serve` daemon and waits until its socket accepts
/// connections.
fn spawn_daemon(dir: &Path, workers: &str, queue: &str) -> (Child, PathBuf) {
    let socket = dir.join("serve.sock");
    let child = Command::new(env!("CARGO_BIN_EXE_fex"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--lab",
            dir.join("lab").to_str().unwrap(),
            "--workers",
            workers,
            "--queue",
            queue,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fex serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if UnixStream::connect(&socket).is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "daemon never bound {}", socket.display());
        std::thread::sleep(Duration::from_millis(25));
    }
    (child, socket)
}

/// Shuts the daemon down and asserts a clean exit.
fn finish_daemon(mut child: Child, socket: &Path) -> String {
    serve::shutdown(socket).expect("shutdown daemon");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = child.try_wait().expect("wait on daemon") {
            assert!(status.success(), "daemon exited with {status}");
            break;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("daemon did not exit after shutdown");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let mut out = String::new();
    use std::io::Read;
    if let Some(mut stdout) = child.stdout.take() {
        let _ = stdout.read_to_string(&mut out);
    }
    out
}

fn micro_sub(tenant: &str) -> Submission {
    let mut sub = Submission::new(tenant, "micro");
    sub.benchmark = Some("arrayread".into());
    sub
}

/// Submit → stream → result against the real binary, then an identical
/// suite from a second tenant: the rerun must be a 100% cache serve with
/// byte-identical CSVs, and the daemon's summary must account it to the
/// right tenant.
#[test]
fn round_trip_and_cross_tenant_cache_serve() {
    let dir = temp_dir("roundtrip");
    let (child, socket) = spawn_daemon(&dir, "2", "8");

    let first = serve::submit(&socket, &micro_sub("alice")).unwrap();
    assert!(!first.store_hit, "a cold submission executes");
    assert!(first.rows > 0, "the result frame has rows");
    assert!(!first.events.is_empty(), "journal events stream back before the result");
    assert!(
        first.events.iter().any(|e| e.contains("experiment_start")),
        "the streamed journal covers the run, got: {:?}",
        first.events.first()
    );
    assert!(first.run_id.starts_with("fex256:"), "the run archives into the shared store");
    assert!(first.graph_misses > 0, "a cold run computes its units");

    let second = serve::submit(&socket, &micro_sub("bob")).unwrap();
    assert!(second.store_hit, "identical work from another tenant is served from cache");
    assert_eq!(second.results_csv, first.results_csv, "byte-identical results CSV");
    assert_eq!(second.failures_csv, first.failures_csv, "byte-identical failures CSV");
    assert!(second.events.is_empty(), "nothing executed, nothing streams");

    let summary = finish_daemon(child, &socket);
    assert!(summary.contains("served 2 submissions"), "summary:\n{summary}");
    assert!(summary.contains("bob: 1 submissions, 1 store hits"), "summary:\n{summary}");
    assert!(summary.contains("alice: 1 submissions, 0 store hits"), "summary:\n{summary}");
    // The daemon's own journal lands next to the store.
    let jsonl = std::fs::read_to_string(dir.join("lab/serve.journal.jsonl")).unwrap();
    for kind in ["serve_submit", "serve_enqueue", "serve_dispatch", "serve_stream"] {
        assert!(jsonl.contains(kind), "serve journal misses `{kind}`:\n{jsonl}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A malformed line gets an error reply naming the problem, the
/// connection and daemon both survive, and valid work still runs
/// afterwards — on the same connection and on fresh ones.
#[test]
fn malformed_submissions_are_rejected_without_killing_the_daemon() {
    let dir = temp_dir("malformed");
    let (child, socket) = spawn_daemon(&dir, "1", "8");

    let mut stream = UnixStream::connect(&socket).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    for (line, expect) in [
        ("this is not json", "malformed"),
        ("{\"op\": \"launch\"}", "unknown op"),
        ("{\"op\": \"submit\", \"suite\": \"micro\"}", "tenant"),
        ("{\"op\": \"submit\", \"tenant\": \"a\", \"suite\": \"nope\"}", "unknown suite"),
    ] {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"reply\": \"error\""), "`{line}` got: {reply}");
        assert!(reply.contains(expect), "`{line}` should mention `{expect}`, got: {reply}");
    }
    drop(stream);

    let outcome = serve::submit(&socket, &micro_sub("carol")).unwrap();
    assert!(outcome.rows > 0, "the daemon still serves after rejections");
    finish_daemon(child, &socket);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CLI's own error contract: bad serve flags exit non-zero with the
/// usage text, without ever binding a socket.
#[test]
fn bad_serve_flags_fail_fast_with_usage() {
    for args in [
        vec!["serve", "--queue", "0"],
        vec!["serve", "--port", "80"],
        vec!["serve", "--workers", "many"],
        vec!["serve", "--socket"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_fex")).args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage: fex"), "{args:?} should print usage, got:\n{stderr}");
    }
}

/// Shutdown drains: submissions already queued when the drain begins
/// still complete to their clients, late submissions are refused, and
/// the daemon exits cleanly.
#[test]
fn shutdown_drains_queued_submissions() {
    let dir = temp_dir("drain");
    // One worker so concurrent submissions actually pile up in the queue.
    let (child, socket) = spawn_daemon(&dir, "1", "16");

    let clients: Vec<_> = (0..3)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut sub = micro_sub("drain");
                sub.seed = 100 + i; // distinct work: each must execute
                serve::submit(&socket, &sub)
            })
        })
        .collect();
    // Let the submissions reach the queue before draining begins.
    std::thread::sleep(Duration::from_millis(500));
    let summary = finish_daemon(child, &socket);
    for client in clients {
        let outcome = client.join().unwrap().expect("queued submission drains to a result");
        assert!(outcome.rows > 0);
    }
    assert!(summary.contains("3 completed"), "summary:\n{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Fleet fault tolerance
// ---------------------------------------------------------------------

/// Runs the micro suite across a simulated fleet, with `kills` host
/// indices downed mid-campaign, and returns the canonical CSV.
fn fleet_campaign(hosts: usize, kills: &[usize]) -> String {
    use fex_core::distributed::{DistributedRun, HostSpec};
    let fleet = fex_netsim::fleet::Fleet::homogeneous(hosts, 2, 3.0e9);
    let specs: Vec<HostSpec> =
        fleet.hosts.iter().map(|h| HostSpec::new(h.name.clone(), h.cores, h.freq_hz)).collect();
    let suite = fex_suites::micro();
    let mut run = DistributedRun::new(suite.clone(), specs).unwrap();
    for &k in kills {
        run = run.kill_host(fleet.hosts[k].name.clone());
    }
    let cfg = fex_core::ExperimentConfig::new("fleet")
        .types(vec!["gcc_native"])
        .input(fex_suites::InputSize::Test)
        .repetitions(2);
    let mut fex = Fex::new();
    let df = run.execute(fex.build_system_mut(), &cfg).unwrap();
    canonical_fleet_csv(&df.to_csv(), &suite, &["gcc_native".to_string()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Differential fault-tolerance: any proper subset of hosts may die
    /// mid-campaign; the re-distributed campaign's canonical CSV must be
    /// byte-identical to the undisturbed fleet's.
    #[test]
    fn killed_hosts_never_change_canonical_results(
        hosts in 2usize..5,
        kill_seed in 0u64..1_000,
    ) {
        // Derive a proper casualty subset from the seed: 1..hosts dead.
        let n_kills = 1 + (kill_seed as usize) % (hosts - 1).max(1);
        let mut kills: Vec<usize> =
            (0..hosts).filter(|i| (kill_seed >> i) & 1 == 1).take(n_kills).collect();
        if kills.is_empty() {
            kills.push((kill_seed as usize) % hosts); // never vacuous
        }
        let undisturbed = fleet_campaign(hosts, &[]);
        let killed = fleet_campaign(hosts, &kills);
        prop_assert_eq!(&undisturbed, &killed, "hosts={} kills={:?}", hosts, kills);
        prop_assert!(undisturbed.lines().count() > 1, "campaign produced rows");
    }

    /// The netsim failure timeline drives the same invariant end to end
    /// through the daemon: an mtbf-armed fleet submission (casualties
    /// chosen by the seeded discrete-event simulation) matches the
    /// undisturbed fleet byte-for-byte.
    #[test]
    fn simulated_failure_timelines_are_byte_invisible(fleet_seed in 0u64..1_000) {
        let dir = temp_dir(&format!("fleetsim-{fleet_seed}"));
        let opts = fex_core::ServeOptions {
            socket: dir.join("serve.sock"),
            lab: dir.join("lab").to_string_lossy().into_owned(),
            workers: 1,
            queue_cap: 8,
        };
        let handle = fex_core::Server::start(opts).unwrap();
        let socket = handle.socket().to_path_buf();

        let mut calm = Submission::new("ops", "micro");
        calm.fleet = 4;
        let mut stormy = calm.clone();
        stormy.fleet_mtbf = 200_000; // a few losses over the horizon
        stormy.fleet_seed = fleet_seed;

        let base = serve::submit(&socket, &calm).unwrap();
        let survived = serve::submit(&socket, &stormy).unwrap();
        serve::shutdown(&socket).unwrap();
        handle.wait().unwrap();

        prop_assert!(base.rows > 0);
        prop_assert_eq!(&base.results_csv, &survived.results_csv,
            "fleet_seed={}", fleet_seed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
