//! Golden-snapshot tests: every user-visible artifact of a small, fully
//! deterministic experiment is pinned byte-for-byte against checked-in
//! files under `tests/golden/`.
//!
//! The experiment is the `micro` suite over two build types with a
//! persistent trap injected into `ptrchase`, so the goldens cover the
//! interesting surface: a partial results CSV, a non-empty failure CSV
//! with recovery/quarantine outcomes, the collect-stage aggregate, one
//! SVG and one ASCII plot, and the journal's `metrics.json` roll-up
//! (wall-clock fields normalized to 0 — they are the only
//! non-deterministic bytes).
//!
//! Regenerating after an intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test snapshots
//! git diff tests/golden/   # review every byte you are about to bless
//! ```
//!
//! A failing snapshot prints the differing file; never update goldens
//! without reading the diff.

use fex_core::config::FaultInjection;
use fex_core::{ExperimentConfig, Fex, PlotRequest};
use fex_suites::InputSize;
use fex_vm::{FaultKind, FaultPlan, MeasureTool};

/// The checked-in golden directory (workspace-relative, resolved from
/// this crate's manifest so the test runs from any working directory).
fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compares `actual` against `tests/golden/<name>`, or rewrites the
/// golden when `UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden `{}` ({e}); regenerate with UPDATE_GOLDEN=1 cargo test --test snapshots",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden; if intentional, regenerate with \
         UPDATE_GOLDEN=1 and review the diff"
    );
}

/// Zeroes the value of every `*_ns` key: wall-clock durations are the
/// only fields of `metrics.json` that vary between observationally
/// identical runs.
fn normalize_metrics(json: &str) -> String {
    json.lines()
        .map(|line| match line.split_once("_ns\": ") {
            Some((head, tail)) => {
                let comma = if tail.ends_with(',') { "," } else { "" };
                format!("{head}_ns\": 0{comma}\n")
            }
            None => format!("{line}\n"),
        })
        .collect()
}

/// The pinned experiment: small, deterministic (explicit seed and jobs),
/// and troubled enough to exercise failures and quarantine.
fn golden_config() -> ExperimentConfig {
    ExperimentConfig::new("micro")
        .types(vec!["gcc_native", "clang_native"])
        .input(InputSize::Test)
        .repetitions(2)
        .jobs(1)
        .tool(MeasureTool::PerfStat)
        .fault(FaultInjection::for_benchmark("ptrchase", FaultPlan::persistent(FaultKind::Trap)))
}

fn golden_fex() -> Fex {
    let mut fex = Fex::new();
    fex.install("gcc-6.1").expect("install gcc");
    fex.install("clang-3.8").expect("install clang");
    fex
}

#[test]
fn results_and_failure_csvs_match_goldens() {
    let mut fex = golden_fex();
    fex.run(&golden_config()).expect("golden experiment runs");
    assert_golden("micro.results.csv", &fex.result_csv("micro").expect("results stored"));
    assert_golden("micro.failures.csv", &fex.failure_csv("micro").expect("failures stored"));
}

#[test]
fn collect_aggregate_matches_golden() {
    let mut fex = golden_fex();
    fex.run(&golden_config()).expect("golden experiment runs");
    let df = fex.result("micro").expect("frame stored");
    let agg = df
        .group_agg(&["benchmark", "type"], "time", fex_core::collect::stats::mean)
        .expect("aggregate");
    assert_golden("micro.collect.txt", &agg.to_csv());
}

#[test]
fn perf_plots_match_goldens_in_both_renderings() {
    let mut fex = golden_fex();
    fex.run(&golden_config()).expect("golden experiment runs");
    let plot = fex.plot("micro", PlotRequest::Perf).expect("perf plot");
    assert_golden("micro.perf.svg", &plot.to_svg());
    assert_golden("micro.perf.txt", &plot.to_ascii());
}

#[test]
fn metrics_json_matches_golden_after_normalization() {
    let mut fex = golden_fex();
    fex.run(&golden_config()).expect("golden experiment runs");
    let metrics = fex.metrics_json("micro").expect("metrics stored");
    for key in ["build_wall_ns", "run_wall_ns", "collect_wall_ns", "experiment_wall_ns"] {
        assert!(metrics.contains(key), "metrics.json lost `{key}`:\n{metrics}");
    }
    assert_golden("micro.metrics.json", &normalize_metrics(&metrics));
}

/// Two deterministic runs of the golden experiment at different seeds:
/// the compare output (verdict table + ASCII comparison plot) is as much
/// a user-visible artifact as the CSVs, so it is pinned too.
#[test]
fn compare_verdict_table_and_plot_match_goldens() {
    use fex_core::lab::Comparison;

    let mut fex = golden_fex();
    fex.run(&golden_config()).expect("baseline run");
    let base = fex.result("micro").expect("baseline frame").clone();
    let mut fex = golden_fex();
    fex.run(&golden_config().seed(43)).expect("candidate run");
    let cand = fex.result("micro").expect("candidate frame").clone();

    let cmp = Comparison::compare(&base, &cand, "time", "seed-42", "seed-43").expect("compare");
    assert_golden("micro.compare.txt", &cmp.to_table());
    assert_golden("micro.compare.plot.txt", &cmp.to_plot().to_ascii());
}

#[test]
fn journal_artifacts_exist_and_metrics_are_recomputable() {
    // The stored metrics.json must be exactly the roll-up of the stored
    // journal — `fex report` depends on recomputability.
    let mut fex = golden_fex();
    fex.run(&golden_config()).expect("golden experiment runs");
    let jsonl = fex.journal_jsonl("micro").expect("journal stored");
    let events: Vec<_> = jsonl
        .lines()
        .map(|l| fex_core::journal::parse_line(l).expect("stored journal parses"))
        .collect();
    let recomputed = fex_core::Metrics::from_journal(&events).to_json();
    assert_eq!(recomputed, fex.metrics_json("micro").unwrap());
}
