//! Integration tests for `fex fuzz` and `fex lab fsck`: generator
//! validity, oracle soundness (clean runs pass) and sensitivity (armed
//! `FEX_FUZZ_BREAK` mutations are caught *and* shrunk), corruption
//! detection/recovery, and the binary's exit-code contract.
//!
//! The generator-validity sweep is the satellite's 200-seed guarantee:
//! every generated Cmm program must parse, compile under **all** build
//! types and terminate within the instruction budget — scenario validity
//! is by construction, so a pipeline error on a generated scenario is
//! always a finding.

use std::path::Path;
use std::process::Command;

use fex_core::fuzz::{self, BreakMode, FuzzOptions, Scenario};
use fex_core::lab::{fsck, Corruption, RunArtifacts, RunStore};
use fex_core::{ExperimentConfig, Repetitions};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fex-fuzz-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_opts(tag: &str) -> FuzzOptions {
    FuzzOptions { bundle_dir: temp_dir(tag), ..FuzzOptions::default() }
}

// --- satellite: generator coverage across 200 seeds ---

/// Every generated program parses, compiles under every build type, and
/// terminates within the fuzz instruction budget. Runs the build+execute
/// stack directly (no oracle overhead) so 200 seeds stay cheap.
#[test]
fn two_hundred_seeds_of_generated_programs_compile_and_terminate() {
    use fex_core::build::{BuildSystem, MakefileSet};
    use fex_core::runner::{RunContext, Runner, SuiteRunner};

    for index in 0..200 {
        let scenario = Scenario::generate(0xC0FFEE, index);
        for program in &scenario.programs {
            let src = program.source();
            fex_cc::parser::parse(&src).unwrap_or_else(|e| {
                panic!("seed 0xC0FFEE case {index} `{}` does not parse: {e}\n{src}", program.name)
            });
        }
        // All four build types, not just the scenario's sample.
        let cfg = scenario.config().types(gen_all_types()).jobs(1).fault_cleared().repetitions(1);
        let mut build = BuildSystem::new(MakefileSet::standard());
        let mut log = Vec::new();
        let mut ctx = RunContext::new(&cfg, &mut build, &mut log);
        let mut runner = SuiteRunner::new(scenario.suite(), &cfg);
        let df = runner
            .run(&mut ctx)
            .unwrap_or_else(|e| panic!("seed 0xC0FFEE case {index} failed the pipeline: {e}"));
        assert!(!df.is_empty(), "seed 0xC0FFEE case {index}: no rows collected");
        assert_eq!(
            ctx.failures.to_csv().lines().count(),
            1,
            "seed 0xC0FFEE case {index}: unexpected failures (budget exhausted?):\n{}",
            ctx.failures.to_csv()
        );
    }
}

fn gen_all_types() -> Vec<&'static str> {
    fuzz::gen::BUILD_TYPES.to_vec()
}

trait ConfigExt {
    fn fault_cleared(self) -> Self;
}
impl ConfigExt for ExperimentConfig {
    fn fault_cleared(mut self) -> Self {
        self.fault = None;
        self
    }
}

// --- oracle soundness and sensitivity ---

/// The CI smoke configuration passes cleanly, and its report renders
/// identically when run twice (determinism).
#[test]
fn seed_42_smoke_cases_pass_all_oracles_deterministically() {
    let opts = FuzzOptions { cases: 6, ..small_opts("smoke") };
    let a = fuzz::fuzz(&opts).unwrap();
    assert!(a.ok(), "{}", a.render());
    let b = fuzz::fuzz(&opts).unwrap();
    assert_eq!(a.render(), b.render());
    let _ = std::fs::remove_dir_all(&opts.bundle_dir);
}

/// An armed break-mode mutation is caught by the matching oracle and
/// shrunk to a minimal scenario: one program, one build type, no fault,
/// no thread sweep, fixed single repetition.
#[test]
fn break_mode_is_caught_and_shrunk_minimal() {
    let opts = FuzzOptions {
        cases: 1,
        max_shrink: 64,
        break_mode: Some(BreakMode::Fusion),
        ..small_opts("break")
    };
    let report = fuzz::fuzz(&opts).unwrap();
    assert_eq!(report.failures.len(), 1, "{}", report.render());
    let failure = &report.failures[0];
    assert_eq!(failure.failure.oracle, "toggles", "{}", report.render());
    let shrunk = &failure.shrunk;
    assert_eq!(shrunk.programs.len(), 1, "shrinker should drop extra programs");
    assert_eq!(shrunk.build_types.len(), 1, "shrinker should drop extra build types");
    assert_eq!(shrunk.threads, vec![1], "shrinker should flatten the thread sweep");
    assert_eq!(shrunk.repetitions, Repetitions::Fixed(1));
    assert!(shrunk.fault.is_none(), "shrinker should disarm the fault plan");

    // The repro bundle landed with coordinates and sources.
    let bundle = failure.bundle.as_ref().expect("bundle written");
    let repro = std::fs::read_to_string(bundle.join("repro.txt")).unwrap();
    assert!(repro.contains("oracle: toggles"), "{repro}");
    assert!(repro.contains("fex fuzz --seed 42"), "{repro}");
    let cmm = bundle.join(format!("{}.cmm", shrunk.programs[0].name));
    assert!(cmm.is_file(), "missing {}", cmm.display());
    let _ = std::fs::remove_dir_all(&opts.bundle_dir);
}

/// The jobs break-mode is attributed to the `jobs` oracle, not `toggles`.
#[test]
fn jobs_break_mode_hits_the_jobs_oracle() {
    let opts = FuzzOptions {
        cases: 1,
        max_shrink: 4, // attribution is the point; minimality is covered above
        break_mode: Some(BreakMode::Jobs),
        ..small_opts("jobsbreak")
    };
    let report = fuzz::fuzz(&opts).unwrap();
    assert_eq!(report.failures.len(), 1, "{}", report.render());
    assert_eq!(report.failures[0].failure.oracle, "jobs", "{}", report.render());
    let _ = std::fs::remove_dir_all(&opts.bundle_dir);
}

/// The committed regression seeds replay clean — fixed bugs stay fixed.
#[test]
fn committed_regression_seeds_replay_clean() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_regressions.txt");
    let opts = small_opts("regress");
    let report = fuzz::replay_regressions(&path, &opts).unwrap();
    assert!(report.cases >= 2, "expected the seeded regression entries");
    assert!(report.ok(), "{}", report.render());

    // Malformed files are a data error, not a panic.
    let bad = opts.bundle_dir.join("bad.txt");
    std::fs::write(&bad, "42 not-a-case\n").unwrap();
    assert!(fuzz::replay_regressions(&bad, &opts).is_err());
    let _ = std::fs::remove_dir_all(&opts.bundle_dir);
}

// --- corruption detection / recovery (library level) ---

fn seeded_store(dir: &Path) -> RunStore {
    let store = RunStore::open(dir).unwrap();
    for seed in [1u64, 2] {
        let cfg = ExperimentConfig::new("micro").seed(seed);
        let art = RunArtifacts {
            results_csv:
                "suite,benchmark,type,threads,input,rep,time\nmicro,a,gcc_native,1,test,0,1.5\n",
            failures_csv: "benchmark,type,threads,rep,error,attempts,outcome\n",
            metrics_json: Some("{}"),
            journal_digest: Some(
                "fex256:0000000000000000000000000000000000000000000000000000000000000000",
            ),
        };
        store.save(&cfg, &art).unwrap();
    }
    store
}

/// Every corruption the injector can produce is detected by `check`, and
/// `fsck --quarantine` restores a clean store — without ever panicking
/// the hardened read paths.
#[test]
fn fsck_detects_and_recovers_from_every_injected_corruption() {
    for corruption in Corruption::ALL {
        let dir = temp_dir(&format!("fsck-{corruption}"));
        let store = seeded_store(&dir);
        fsck::inject(&store, corruption).unwrap();

        let report = fsck::check(&store);
        assert!(!report.clean(), "{corruption}: injected damage went undetected");

        // Hardened readers shrug, never panic or hard-fail.
        let (_entries, _warnings) = store.scan();
        store.list().unwrap();

        let repaired = fsck::fsck(&store, true).unwrap();
        assert!(!repaired.clean(), "{corruption}: repair lost the issue report");
        let after = fsck::check(&store);
        assert!(
            after.clean(),
            "{corruption}: store still dirty after quarantine:\n{}",
            after.render()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// --- binary exit codes and messages ---

fn fex_bin() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fex"));
    cmd.env_remove("FEX_FUZZ_BREAK");
    cmd
}

#[test]
fn fuzz_binary_smoke_is_clean_and_break_mode_fails_with_bundle() {
    let bundle = temp_dir("bin-bundle");
    let bundle_arg = bundle.to_string_lossy().to_string();

    let out = fex_bin()
        .args(["fuzz", "--seed", "42", "--cases", "4", "--bundle", &bundle_arg])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("passed all oracles"));

    let out = fex_bin()
        .args(["fuzz", "--seed", "42", "--cases", "1", "--bundle", &bundle_arg])
        .env("FEX_FUZZ_BREAK", "fusion")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAILED oracle `toggles`"), "{stdout}");
    assert!(stdout.contains("shrunk repro:"), "{stdout}");
    assert!(bundle.join("seed42-case0/repro.txt").is_file(), "{stdout}");
    let _ = std::fs::remove_dir_all(&bundle);
}

/// A bad pass selection is a clean configuration error: exit code 1, a
/// message naming the offending pass, no panic, no partial run.
#[test]
fn bad_pass_selections_exit_one_with_a_clean_message() {
    let cases: [(&[&str], &str); 4] = [
        (&["run", "-n", "micro", "--passes", "bogus"], "unknown pass `bogus`"),
        (&["run", "-n", "micro", "--passes", "trace,trace"], "duplicate pass `trace`"),
        (&["run", "-n", "micro", "--passes", "fuse,trace"], "out of pipeline order"),
        (&["run", "-n", "micro", "--no-pass", "bogus"], "unknown pass `bogus`"),
    ];
    for (args, needle) in cases {
        let out = fex_bin().args(args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(1),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?} stderr missing `{needle}`:\n{stderr}");
    }
}

#[test]
fn fuzz_binary_replays_regressions() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_regressions.txt");
    let out = fex_bin().args(["fuzz", "--regressions", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
}

/// Satellite 2: `fex compare` against a store whose artifacts were
/// corrupted exits 1 with a message naming the damaged run id.
#[test]
fn compare_against_corrupted_store_exits_one_and_names_the_run() {
    let dir = temp_dir("cmp-corrupt");
    let store = seeded_store(&dir);
    let victim = store.resolve("latest").unwrap();
    fsck::inject(&store, Corruption::MissingResultsCsv).unwrap();
    let lab = dir.to_string_lossy().to_string();

    let out = fex_bin().args(["compare", "prev", "latest", "--lab", &lab]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let short = victim.run_id.trim_start_matches("fex256:");
    assert!(
        stderr.contains(short) || stderr.contains(&victim.run_id),
        "stderr should name the corrupt run id {short}: {stderr}"
    );
    assert!(stderr.contains("fsck"), "stderr should point at fsck: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lab_fsck_binary_detects_and_quarantines() {
    let dir = temp_dir("fsck-bin");
    let store = seeded_store(&dir);
    fsck::inject(&store, Corruption::TornRecord).unwrap();
    let lab = dir.to_string_lossy().to_string();

    let out = fex_bin().args(["lab", "fsck", "--lab", &lab]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("corrupt-record"), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--quarantine"));

    let out = fex_bin().args(["lab", "fsck", "--quarantine", "--lab", &lab]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));

    let out = fex_bin().args(["lab", "fsck", "--lab", &lab]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "store should be clean after quarantine");
    assert!(String::from_utf8_lossy(&out.stdout).contains("store is clean"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted index never breaks `fex lab list` — damaged lines are
/// warnings on stderr, survivors still render.
#[test]
fn lab_list_survives_a_corrupted_index() {
    let dir = temp_dir("list-corrupt");
    let store = seeded_store(&dir);
    fsck::inject(&store, Corruption::GarbageIndexLine).unwrap();
    let lab = dir.to_string_lossy().to_string();

    let out = fex_bin().args(["lab", "list", "--lab", &lab]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("warning"), "warning surfaced");
    assert_eq!(String::from_utf8_lossy(&out.stdout).matches("fex256:").count(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
